// Package netserver is the networked collection daemon engine: it fronts
// a server.Stream with real sockets so "millions of users" means remote
// processes, not in-process function calls.
//
// Two ingestion fronts share one Stream:
//
//   - HTTP: JSON enrollment (POST /v1/enroll), binary batched report
//     ingestion (POST /v1/reports, the batch-record format of
//     AppendBatchRecord feeding Stream.IngestBatch), round control
//     (POST /v1/round/close), history and status reads, and a live
//     Server-Sent-Events round stream (GET /v1/stream) behind a hub with
//     per-client buffered channels and an explicit slow-subscriber drop
//     policy. GET / serves a minimal embedded dashboard.
//
//   - Raw TCP: length-prefixed frames (see frame.go) carrying the
//     existing wire formats — longitudinal.AppendRegistration for
//     enrollment, Report.AppendBinary payloads for reports — decoded in a
//     per-connection read loop whose steady state reuses one frame buffer
//     and tallies through Stream.Ingest at zero allocations per report,
//     so the PR 3/5 zero-alloc property survives the socket boundary.
//
// Estimates are bit-identical to ingesting the same payloads in-process:
// the daemon adds transport, never arithmetic (pinned by the parity tests
// in e2e_test.go).
package netserver

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/randsrc"
	"github.com/loloha-ldp/loloha/internal/server"
)

// Config parameterizes a daemon engine.
type Config struct {
	// Stream is the collection service to front. Required; the caller
	// retains ownership (the daemon never calls Stream.Close).
	Stream *server.Stream
	// MaxFrameBytes bounds a TCP frame body and an HTTP batch record's
	// payload; oversize frames kill the connection before any allocation
	// sized by the hostile length. Default 1 MiB.
	MaxFrameBytes int
	// MaxBatchBytes bounds an HTTP /v1/reports body. Default 8 MiB.
	MaxBatchBytes int
	// RoundEvery, when positive, closes the round on this period whenever
	// reports are pending (empty rounds are not published). Zero means
	// rounds close only via POST /v1/round/close or the owning process.
	RoundEvery time.Duration
	// SSECapacity is each SSE client's buffered round count; a client
	// whose buffer is full when a round is published drops that round
	// (the hub mirrors Stream's WithRoundCapacity drop-not-block policy).
	// Default 16.
	SSECapacity int
	// AcceptMerges makes this daemon a collector-tree root: merge frames
	// (TCP 0x05) and POST /v1/merge add leaf tallies into the stream's
	// open round. Off by default — a merge frame at a non-root is an
	// unknown frame and drops the connection.
	AcceptMerges bool
	// Upstream makes this daemon a collector-tree leaf: instead of merely
	// closing rounds, the round timer and POST /v1/round/close export each
	// round's merged tallies, wrap them in a merge envelope and ship them
	// to the parent through this sender (with durable spooling and
	// background retry — see LeafID/OutboxDir). The leaf still publishes
	// its local RoundResult (its user partition's estimates). A daemon may
	// set both AcceptMerges and Upstream — an interior node of a deeper
	// tree.
	Upstream MergeSender
	// LeafID is this leaf's stable identity in its parent's dedup ledger.
	// Required with Upstream, and it must survive restarts (a renamed
	// leaf opens a fresh dedup history at the root).
	LeafID string
	// OutboxDir, when set, spools each closed round's envelope to disk
	// before the first ship attempt and replays unshipped envelopes at
	// boot, so a leaf crash between export and ack loses nothing. Empty
	// means in-memory spooling only: retries survive, a crash does not.
	OutboxDir string
	// ShipRetryMin/Max bound the shipper's capped exponential backoff
	// between failed ship attempts. Defaults 200ms and 15s.
	ShipRetryMin time.Duration
	ShipRetryMax time.Duration
	// RoundDeadline, on a root, closes the open round this long after its
	// first envelope arrives even if leaves are missing — a partial round
	// with per-leaf attribution in /v1/status — provided at least Quorum
	// leaves have arrived (below quorum the deadline re-arms). Late
	// envelopes land in the next round; no report is lost. Zero disables
	// deadline closing (rounds close via /v1/round/close or RoundEvery).
	RoundDeadline time.Duration
	// Quorum is the minimum distinct leaves that must have shipped into
	// the open round before RoundDeadline may close it. Default 1.
	Quorum int
	// ExpectLeaves, when positive, is the tree's leaf count: a deadline
	// close with fewer arrivals marks the round partial in /v1/status,
	// and a round reaching ExpectLeaves arrivals closes immediately
	// instead of waiting out the deadline.
	ExpectLeaves int
}

// Server is the daemon engine: listeners, connection registry, SSE hub
// and round timer around one server.Stream. Create with New, attach
// listeners with ServeTCP/ServeHTTP (or mount Handler in a test server),
// stop with Close.
type Server struct {
	stream       *server.Stream
	maxFrame     int
	maxBatch     int
	hub          *hub
	mux          *http.ServeMux
	roundTick    time.Duration
	started      time.Time
	acceptMerges bool
	upstream     MergeSender
	leafID       string
	outbox       *outbox
	shipMin      time.Duration
	shipMax      time.Duration

	// Root graceful degradation: deadline/quorum round closing with
	// per-leaf arrival attribution for the open round.
	roundDeadline time.Duration
	quorum        int
	expectLeaves  int
	arrivalMu     sync.Mutex
	arrivals      map[string]int // leaf → reports merged into the open round
	deadlineArm   chan struct{}  // cap 1: first arrival arms the deadline

	// shipMu serializes ship attempts (the background shipper and the
	// inline attempt a round close makes); shipKick wakes the shipper.
	shipMu   sync.Mutex
	shipKick chan struct{}

	// Live counters, all monotonic except tcpLive.
	tcpTotal     atomic.Uint64
	tcpLive      atomic.Int64
	tcpReports   atomic.Uint64
	tcpRejected  atomic.Uint64
	httpBatches  atomic.Uint64
	httpReports  atomic.Uint64
	httpRejected atomic.Uint64
	mergeFrames  atomic.Uint64 // root: merge frames/requests applied
	mergeReports atomic.Uint64 // root: reports merged from leaves
	mergeBad     atomic.Uint64 // root: undecodable or mismatched merges
	mergeDup     atomic.Uint64 // root: envelopes deduplicated, not reapplied
	partialRound atomic.Uint64 // root: deadline closes below ExpectLeaves
	shipped      atomic.Uint64 // leaf: envelopes confirmed (applied or dup)
	shipFailed   atomic.Uint64 // leaf: ship attempts that errored
	shipRetries  atomic.Uint64 // leaf: backoff retries scheduled

	mu        sync.Mutex
	listeners []net.Listener
	// tcpListeners is the raw-frame subset of listeners: Drain closes
	// these directly (stopping new connections) while the HTTP listeners
	// shut down gracefully through their http.Server.
	tcpListeners []net.Listener
	httpSrvs     []*http.Server
	conns        map[net.Conn]struct{}
	draining     bool
	closed       bool
	done         chan struct{}
	wg           sync.WaitGroup
	// connWg tracks TCP connection goroutines separately from the
	// engine's own (forwardRounds, roundTimer), so Drain can wait for
	// in-flight frames without deadlocking on goroutines that only exit
	// at Close.
	connWg sync.WaitGroup
}

// New returns an engine fronting cfg.Stream. The SSE hub subscribes to
// the stream immediately, so rounds closed before any listener is
// attached still reach later SSE clients' history via /v1/rounds.
func New(cfg Config) (*Server, error) {
	if cfg.Stream == nil {
		return nil, fmt.Errorf("netserver: nil Stream")
	}
	if cfg.MaxFrameBytes == 0 {
		cfg.MaxFrameBytes = 1 << 20
	}
	if cfg.MaxFrameBytes < frameMinBody {
		return nil, fmt.Errorf("netserver: MaxFrameBytes %d below minimum frame body %d",
			cfg.MaxFrameBytes, frameMinBody)
	}
	if cfg.MaxBatchBytes == 0 {
		cfg.MaxBatchBytes = 8 << 20
	}
	if cfg.SSECapacity == 0 {
		cfg.SSECapacity = 16
	}
	if cfg.SSECapacity < 1 {
		return nil, fmt.Errorf("netserver: SSECapacity must be at least 1, got %d", cfg.SSECapacity)
	}
	if cfg.Upstream != nil {
		if cfg.LeafID == "" {
			return nil, fmt.Errorf("netserver: Upstream requires a LeafID (the parent's dedup ledger key)")
		}
		if len(cfg.LeafID) > persist.MaxLeafName {
			return nil, fmt.Errorf("netserver: LeafID %d bytes, max %d", len(cfg.LeafID), persist.MaxLeafName)
		}
	}
	if cfg.OutboxDir != "" && cfg.Upstream == nil {
		return nil, fmt.Errorf("netserver: OutboxDir without an Upstream to ship to")
	}
	if cfg.ShipRetryMin <= 0 {
		cfg.ShipRetryMin = 200 * time.Millisecond
	}
	if cfg.ShipRetryMax <= 0 {
		cfg.ShipRetryMax = 15 * time.Second
	}
	if (cfg.RoundDeadline > 0 || cfg.Quorum > 0 || cfg.ExpectLeaves > 0) && !cfg.AcceptMerges {
		return nil, fmt.Errorf("netserver: RoundDeadline/Quorum/ExpectLeaves apply to a root (AcceptMerges)")
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = 1
	}
	s := &Server{
		stream:        cfg.Stream,
		maxFrame:      cfg.MaxFrameBytes,
		maxBatch:      cfg.MaxBatchBytes,
		hub:           newHub(cfg.SSECapacity),
		roundTick:     cfg.RoundEvery,
		started:       time.Now(),
		acceptMerges:  cfg.AcceptMerges,
		upstream:      cfg.Upstream,
		leafID:        cfg.LeafID,
		shipMin:       cfg.ShipRetryMin,
		shipMax:       cfg.ShipRetryMax,
		roundDeadline: cfg.RoundDeadline,
		quorum:        cfg.Quorum,
		expectLeaves:  cfg.ExpectLeaves,
		conns:         map[net.Conn]struct{}{},
		done:          make(chan struct{}),
	}
	if s.acceptMerges {
		s.arrivals = map[string]int{}
		s.deadlineArm = make(chan struct{}, 1)
	}
	if s.upstream != nil {
		ob, err := openOutbox(cfg.OutboxDir, cfg.LeafID)
		if err != nil {
			return nil, err
		}
		s.outbox = ob
		s.shipKick = make(chan struct{}, 1)
	}
	s.mux = s.newMux()
	s.wg.Add(1)
	go s.forwardRounds()
	if s.roundTick > 0 {
		s.wg.Add(1)
		go s.roundTimer()
	}
	if s.upstream != nil {
		s.wg.Add(1)
		go s.shipper()
		if n, _ := s.outbox.stats(); n > 0 {
			// Boot replay: envelopes spooled by a previous process ship as
			// soon as the parent is reachable.
			s.kickShipper()
		}
	}
	if s.acceptMerges && s.roundDeadline > 0 {
		s.wg.Add(1)
		go s.deadlineLoop()
	}
	return s, nil
}

// Stream returns the fronted collection service.
func (s *Server) Stream() *server.Stream { return s.stream }

// forwardRounds pumps every published RoundResult into the SSE hub until
// the stream or the server closes.
func (s *Server) forwardRounds() {
	defer s.wg.Done()
	sub := s.stream.Subscribe()
	for {
		select {
		case res, ok := <-sub:
			if !ok {
				s.hub.closeAll()
				return
			}
			s.hub.broadcast(res)
		case <-s.done:
			return
		}
	}
}

// roundTimer closes the round every RoundEvery while reports are pending.
// A leaf (Config.Upstream) ships each closed round's tallies upstream
// instead of only publishing locally.
func (s *Server) roundTimer() {
	defer s.wg.Done()
	t := time.NewTicker(s.roundTick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.stream.Pending() > 0 {
				s.closeRound()
			}
		case <-s.done:
			return
		}
	}
}

// closeRound closes the stream's round through the daemon's role: a leaf
// exports the tallies into the outbox and ships, a root resets its
// per-leaf arrival attribution, everything else just closes. The
// returned error is the spool or ship failure, if any; the local
// RoundResult is published either way, and a failed ship leaves the
// envelope in the outbox for the background shipper — delivery is
// deferred, never abandoned.
func (s *Server) closeRound() (server.RoundResult, error) {
	if s.acceptMerges {
		s.resetArrivals()
	}
	if s.upstream == nil {
		return s.stream.CloseRound(), nil
	}
	res, snap, err := s.stream.CloseRoundExport()
	if err != nil {
		// The aggregator cannot export (an external protocol without the
		// snapshot contract): the round still closes.
		return s.stream.CloseRound(), err
	}
	if res.Reports == 0 {
		// Nothing to merge upstream; an empty round does not burn a
		// sequence number or a spool file.
		return res, nil
	}
	image, err := persist.Append(nil, snap)
	if err != nil {
		return res, fmt.Errorf("netserver: encoding round %d export: %w", res.Round, err)
	}
	seq, spoolErr := s.outbox.add(res.Round, image)
	if shipErr := s.shipPending(); shipErr != nil {
		// First attempt failed: the envelope stays spooled and the
		// background shipper retries with backoff until the parent acks.
		s.kickShipper()
		return res, fmt.Errorf("netserver: shipping round %d (envelope seq %d) upstream (spooled for retry): %w",
			res.Round, seq, shipErr)
	}
	if spoolErr != nil {
		// The envelope DID ship; only its durability write failed.
		return res, spoolErr
	}
	return res, nil
}

// shipPending ships every outbox envelope in sequence order, oldest
// first, stopping at the first failure. An envelope is removed only on a
// confirmed ack — applied or duplicate, both mean the parent has it.
func (s *Server) shipPending() error {
	s.shipMu.Lock()
	defer s.shipMu.Unlock()
	for {
		item, ok := s.outbox.first()
		if !ok {
			return nil
		}
		// Applied and duplicate are both confirmations: the parent holds
		// the envelope's tallies either way.
		if _, _, err := s.upstream.Ship(item.env); err != nil {
			s.shipFailed.Add(1)
			return err
		}
		s.outbox.ack(item.seq)
		s.shipped.Add(1)
	}
}

// kickShipper wakes the background shipper without blocking.
func (s *Server) kickShipper() {
	select {
	case s.shipKick <- struct{}{}:
	default:
	}
}

// shipper drains the outbox in the background, retrying failed ships
// with capped exponential backoff plus deterministic jitter (seeded from
// the leaf identity, so a fleet retrying the same outage spreads out
// while any one leaf stays reproducible).
func (s *Server) shipper() {
	defer s.wg.Done()
	jitter := randsrc.NewSplitMix64(seqHash(s.leafID))
	backoff := s.shipMin
	for {
		select {
		case <-s.done:
			return
		case <-s.shipKick:
		}
		for {
			if err := s.shipPending(); err == nil {
				backoff = s.shipMin
				break
			}
			s.shipRetries.Add(1)
			delay := backoff + time.Duration(jitter.Uint64()%uint64(backoff/2+1))
			if backoff *= 2; backoff > s.shipMax {
				backoff = s.shipMax
			}
			select {
			case <-s.done:
				return
			case <-time.After(delay):
			}
		}
	}
}

// FlushOutbox blocks until every spooled envelope has been confirmed by
// the parent or the timeout passes, returning an error in the latter
// case with the count still unshipped. A non-leaf returns nil.
func (s *Server) FlushOutbox(timeout time.Duration) error {
	if s.outbox == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		n, oldest := s.outbox.stats()
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("netserver: %d envelopes still unshipped (oldest round %d)", n, oldest)
		}
		s.kickShipper()
		time.Sleep(5 * time.Millisecond)
	}
}

// noteLeafArrival records a fresh (non-duplicate) envelope merged into
// the open round, for partial-round attribution and the deadline/quorum
// close. The first arrival of a round arms the deadline timer; reaching
// ExpectLeaves distinct leaves closes the round immediately.
func (s *Server) noteLeafArrival(leaf string, reports int) {
	s.arrivalMu.Lock()
	prev := len(s.arrivals)
	s.arrivals[leaf] += reports
	n := len(s.arrivals)
	s.arrivalMu.Unlock()
	if s.roundDeadline == 0 || n == prev {
		return // no deadline configured, or a leaf shipping twice in one round
	}
	if n == 1 {
		select {
		case s.deadlineArm <- struct{}{}:
		default:
		}
	}
	if s.expectLeaves > 0 && n == s.expectLeaves {
		// Everybody reported: close now rather than waiting out the
		// deadline. closeRound resets the arrival map; the already-armed
		// timer fires into an empty (or re-armed) round harmlessly.
		s.closeRound()
	}
}

func (s *Server) resetArrivals() {
	s.arrivalMu.Lock()
	clear(s.arrivals)
	s.arrivalMu.Unlock()
}

// arrivalCount returns the distinct leaves merged into the open round.
func (s *Server) arrivalCount() int {
	s.arrivalMu.Lock()
	defer s.arrivalMu.Unlock()
	return len(s.arrivals)
}

// deadlineLoop closes a root's round RoundDeadline after the round's
// first envelope arrives, once at least Quorum leaves have shipped —
// graceful degradation: a slow or dead leaf delays the round by at most
// the deadline instead of stalling it forever, and its late envelope
// lands in the next round. Below quorum the deadline re-arms.
func (s *Server) deadlineLoop() {
	defer s.wg.Done()
	timer := time.NewTimer(s.roundDeadline)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.done:
			return
		case <-s.deadlineArm:
			timer.Reset(s.roundDeadline)
		case <-timer.C:
			n := s.arrivalCount()
			if n == 0 {
				continue // the round already closed through another path
			}
			if n < s.quorum {
				timer.Reset(s.roundDeadline)
				continue
			}
			if s.expectLeaves > 0 && n < s.expectLeaves {
				s.partialRound.Add(1)
			}
			s.closeRound()
		}
	}
}

// ServeTCP accepts raw-frame connections on l until l or the server
// closes. It blocks; run it in a goroutine. The listener is closed by
// Server.Close.
func (s *Server) ServeTCP(l net.Listener) error {
	if !s.track(l) {
		l.Close()
		return fmt.Errorf("netserver: server closed")
	}
	s.mu.Lock()
	s.tcpListeners = append(s.tcpListeners, l)
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil // closed by Close; not an error
			default:
				if s.isDraining() {
					return nil // listener closed by Drain; not an error
				}
				return err
			}
		}
		if !s.trackConn(nc) {
			nc.Close()
			return nil
		}
		s.tcpTotal.Add(1)
		s.tcpLive.Add(1)
		s.wg.Add(1)
		s.connWg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.connWg.Done()
			defer s.untrackConn(nc)
			defer s.tcpLive.Add(-1)
			newTCPConn(s, nc).serve()
		}()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ServeHTTP serves the daemon's HTTP API on l until l or the server
// closes. It blocks; run it in a goroutine.
func (s *Server) ServeHTTP(l net.Listener) error {
	if !s.track(l) {
		l.Close()
		return fmt.Errorf("netserver: server closed")
	}
	srv := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.httpSrvs = append(s.httpSrvs, srv)
	s.mu.Unlock()
	err := srv.Serve(l)
	if err == http.ErrServerClosed {
		return nil // Drain shut it down gracefully
	}
	select {
	case <-s.done:
		return nil
	default:
		if s.isDraining() {
			return nil
		}
		return err
	}
}

// Handler exposes the HTTP API for tests and embedding (httptest.Server,
// custom TLS fronting, an existing mux).
func (s *Server) Handler() http.Handler { return s.mux }

// track registers a listener; false when the server is already closed.
func (s *Server) track(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners = append(s.listeners, l)
	return true
}

func (s *Server) trackConn(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrackConn(nc net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, nc)
	nc.Close()
}

// Drain gracefully quiesces ingestion within the timeout: new
// connections stop (listeners close), in-flight HTTP requests finish
// (http.Server.Shutdown), and live TCP connections get until the
// deadline to be consumed — frames already buffered in a connection are
// read and applied, so a batch in flight when shutdown begins still
// tallies before the final snapshot, instead of being cut off mid-frame.
// A connection still open at the deadline is abandoned to Close.
//
// Drain does not stop the engine: call Close afterwards. The intended
// shutdown sequence of a durable daemon is Drain → Stream.Snapshot →
// Close, so the snapshot includes everything the sockets delivered.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	tcpLs := append([]net.Listener(nil), s.tcpListeners...)
	httpSrvs := append([]*http.Server(nil), s.httpSrvs...)
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for _, l := range tcpLs {
		l.Close()
	}
	// A read deadline lets each connection loop consume everything already
	// buffered and then exit on the timeout (or earlier, on the client's
	// EOF) instead of blocking in ReadFull forever.
	for _, nc := range conns {
		nc.SetReadDeadline(deadline)
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	var err error
	for _, srv := range httpSrvs {
		if e := srv.Shutdown(ctx); e != nil && err == nil {
			err = fmt.Errorf("netserver: draining HTTP: %w", e)
		}
	}
	done := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Until(deadline)):
		err = fmt.Errorf("netserver: drain deadline passed with TCP connections still open")
	}
	return err
}

// Close stops the daemon: listeners and live connections close, the round
// timer and hub forwarding stop, and every SSE client's channel closes.
// The fronted Stream is left open — rounds already published stay
// readable and the owner may keep ingesting in-process. Close is
// idempotent and waits for connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	for _, l := range s.listeners {
		l.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.hub.closeAll()
	return nil
}
