package netserver

// Exactly-once delivery tests: per-envelope acks survive redials (the
// cumulative-ack counter reset is pinned here), the leaf outbox spools a
// round the parent never confirmed and replays it at boot, a restarted
// root deduplicates re-shipped envelopes through its restored ledger, and
// a root under a round deadline publishes partial rounds without losing
// the late leaf's reports.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/server"
)

// exportEnvelope closes s's round and wraps the exported tallies in an
// envelope with an explicit sequence number — the test-side stand-in for
// the outbox's numbering.
func exportEnvelope(t *testing.T, s *server.Stream, leaf string, seq uint64) ([]byte, server.RoundResult) {
	t.Helper()
	res, snap, err := s.CloseRoundExport()
	if err != nil {
		t.Fatal(err)
	}
	env, err := persist.AppendEnvelope(nil, &persist.Envelope{Leaf: leaf, Round: res.Round, Seq: seq, Snap: snap})
	if err != nil {
		t.Fatal(err)
	}
	return env, res
}

// ingestRound feeds one deterministic report per client into each stream.
func ingestRound(t *testing.T, proto longitudinal.Protocol, clients []longitudinal.AppendReporter,
	round int, streams ...*server.Stream) {
	t.Helper()
	for u, cl := range clients {
		payload := cl.AppendReport(nil, (u*7+round)%proto.K())
		for _, s := range streams {
			if err := s.Ingest(u, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// getStatus fetches and decodes /v1/status from a server's handler.
func getStatus(t *testing.T, srv *Server) statusJSON {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMergeClientRedialExactlyOnce pins the bug the per-envelope ack
// replaced: the old cumulative ack tracked "reports confirmed so far"
// per connection, so a redial reset the baseline and the next Send
// reported a garbage delta. With envelope acks, a Ship after Close
// returns exactly the shipped envelope's count, and re-shipping an old
// envelope across the redial is a duplicate, not a double count.
func TestMergeClientRedialExactlyOnce(t *testing.T) {
	const n = 24
	proto, err := parityFamilies[0].build()
	if err != nil {
		t.Fatal(err)
	}
	ref := newTestStream(t, proto)
	rootStream := newTestStream(t, proto)
	rootSrv := newTestServer(t, rootStream, Config{AcceptMerges: true})
	addr := serveTCPAddr(t, rootSrv)
	leaf := newTestStream(t, proto)
	clients := treeClients(t, proto, ref, []*server.Stream{leaf}, n)

	up, err := DialMerge(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()

	ingestRound(t, proto, clients, 0, ref, leaf)
	env0, _ := exportEnvelope(t, leaf, "leaf-a", 1)
	merged, dup, err := up.Ship(env0)
	if err != nil || dup || merged != n {
		t.Fatalf("Ship(env0) = %d, dup=%v, err=%v; want %d fresh reports", merged, dup, err, n)
	}
	refRes0 := ref.CloseRound()
	rootRes0 := rootStream.CloseRound()

	// The redial: every connection-lifetime counter a cumulative ack
	// would have depended on is gone.
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}

	ingestRound(t, proto, clients, 1, ref, leaf)
	env1, _ := exportEnvelope(t, leaf, "leaf-a", 2)
	merged, dup, err = up.Ship(env1)
	if err != nil || dup || merged != n {
		t.Fatalf("Ship(env1) after redial = %d, dup=%v, err=%v; want exactly %d", merged, dup, err, n)
	}
	// A retry of round 0's envelope lands on the fresh connection:
	// duplicate, zero reapplied.
	merged, dup, err = up.Ship(env0)
	if err != nil || !dup || merged != 0 {
		t.Fatalf("re-Ship(env0) = %d, dup=%v, err=%v; want a duplicate ack", merged, dup, err)
	}
	refRes1 := ref.CloseRound()
	rootRes1 := rootStream.CloseRound()

	for round, pair := range [][2]server.RoundResult{{rootRes0, refRes0}, {rootRes1, refRes1}} {
		got, want := pair[0], pair[1]
		if got.Reports != want.Reports || !sameFloats(got.Raw, want.Raw) || !sameFloats(got.Estimates, want.Estimates) {
			t.Fatalf("round %d: root diverges from single-node reference after redial", round)
		}
	}
	if got := rootSrv.mergeDup.Load(); got != 1 {
		t.Fatalf("root deduplicated %d envelopes, want 1", got)
	}
	if got := rootSrv.mergeReports.Load(); got != 2*n {
		t.Fatalf("root merged %d reports, want %d", got, 2*n)
	}
}

// downSender is an upstream whose parent is unreachable: every Ship
// fails, so delivery stays unknown and envelopes stay spooled.
type downSender struct{}

func (downSender) Ship([]byte) (int, bool, error) { return 0, false, errors.New("parent down") }
func (downSender) Addr() string                   { return "down:0" }
func (downSender) Close() error                   { return nil }

// TestLeafOutboxSpoolsAndReplaysAtBoot drives the durable half: a round
// closed while the parent is down is spooled (and surfaced in
// /v1/status), survives the leaf engine stopping, and a new engine over
// the same outbox directory replays it at boot — the root sees every
// report exactly once, in round order.
func TestLeafOutboxSpoolsAndReplaysAtBoot(t *testing.T) {
	const n = 16
	proto, err := parityFamilies[0].build()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ref := newTestStream(t, proto)
	leafStream := newTestStream(t, proto)
	clients := treeClients(t, proto, ref, []*server.Stream{leafStream}, n)

	leaf1 := newTestServer(t, leafStream, Config{
		Upstream:     downSender{},
		LeafID:       "leaf-a",
		OutboxDir:    dir,
		ShipRetryMin: time.Millisecond,
		ShipRetryMax: 4 * time.Millisecond,
	})
	ingestRound(t, proto, clients, 0, ref, leafStream)
	if _, err := leaf1.closeRound(); err == nil {
		t.Fatal("closeRound with the parent down reported success")
	}
	st := getStatus(t, leaf1)
	if st.Merge == nil || st.Merge.Unshipped != 1 || st.Merge.OldestUnshippedRound != 0 {
		t.Fatalf("leaf status = %+v, want 1 unshipped envelope from round 0", st.Merge)
	}
	// The background shipper is retrying against the dead parent.
	deadline := time.Now().Add(5 * time.Second)
	for leaf1.shipRetries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background shipper never retried the spooled envelope")
		}
		time.Sleep(time.Millisecond)
	}
	leaf1.Close()

	// The leaf restarts with a reachable parent: New's boot replay must
	// deliver the spooled round without any new round closing.
	rootStream := newTestStream(t, proto)
	rootSrv := newTestServer(t, rootStream, Config{AcceptMerges: true})
	up, err := DialMerge(serveTCPAddr(t, rootSrv), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	leaf2 := newTestServer(t, leafStream, Config{
		Upstream:     up,
		LeafID:       "leaf-a",
		OutboxDir:    dir,
		ShipRetryMin: time.Millisecond,
		ShipRetryMax: 4 * time.Millisecond,
	})
	if err := leaf2.FlushOutbox(10 * time.Second); err != nil {
		t.Fatalf("boot replay never drained the outbox: %v", err)
	}
	if got := rootSrv.mergeReports.Load(); got != n {
		t.Fatalf("root merged %d reports after replay, want %d", got, n)
	}
	refRes := ref.CloseRound()
	rootRes := rootStream.CloseRound()
	if rootRes.Reports != refRes.Reports || !sameFloats(rootRes.Raw, refRes.Raw) {
		t.Fatal("replayed round diverges from single-node reference")
	}

	// The durable SEQ survived the restart too: the next round's envelope
	// continues the sequence, which the root's ledger records.
	ingestRound(t, proto, clients, 1, ref, leafStream)
	if _, err := leaf2.closeRound(); err != nil {
		t.Fatalf("round 1 close: %v", err)
	}
	ledger := rootStream.Ledger()
	if len(ledger) != 1 || ledger[0].Leaf != "leaf-a" || ledger[0].Seq != 2 {
		t.Fatalf("root ledger = %+v, want leaf-a at seq 2", ledger)
	}
	if st := getStatus(t, leaf2); st.Merge.Unshipped != 0 || st.Merge.OldestUnshippedRound != -1 {
		t.Fatalf("leaf status after replay = %+v, want an empty outbox", st.Merge)
	}
}

// TestRootRestartDedupOverWire re-ships an already-applied envelope to a
// root restored from its snapshot: the ledger rides the snapshot (the
// same image as the tallies, so they can never disagree), and the
// restart does not reopen the dedup window.
func TestRootRestartDedupOverWire(t *testing.T) {
	const n = 16
	proto, err := parityFamilies[0].build()
	if err != nil {
		t.Fatal(err)
	}
	leaf := newTestStream(t, proto)
	clients := make([]longitudinal.AppendReporter, n)
	for u := range clients {
		cl := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		clients[u] = cl
		if err := leaf.Enroll(u, cl.WireRegistration()); err != nil {
			t.Fatal(err)
		}
	}
	rootStream1 := newTestStream(t, proto)
	rootSrv1 := newTestServer(t, rootStream1, Config{AcceptMerges: true})
	up1, err := DialMerge(serveTCPAddr(t, rootSrv1), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer up1.Close()

	ingestRound(t, proto, clients, 0, leaf)
	env0, _ := exportEnvelope(t, leaf, "leaf-a", 1)
	if _, dup, err := up1.Ship(env0); err != nil || dup {
		t.Fatalf("Ship(env0): dup=%v, err=%v", dup, err)
	}

	// Root restart: snapshot mid-round (envelope applied, ack possibly
	// lost on its way back), restore into a fresh stream and engine — the
	// lolohad shutdown/startup sequence.
	var image bytes.Buffer
	if err := rootStream1.Snapshot(&image); err != nil {
		t.Fatal(err)
	}
	rootSrv1.Close()
	rootStream2, err := server.RestoreStream(&image, proto, server.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rootStream2.Close)
	rootSrv2 := newTestServer(t, rootStream2, Config{AcceptMerges: true})
	up2, err := DialMerge(serveTCPAddr(t, rootSrv2), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer up2.Close()

	// The leaf, never having seen the ack, retries round 0 against the
	// restarted root: duplicate, not a double count.
	if merged, dup, err := up2.Ship(env0); err != nil || !dup || merged != 0 {
		t.Fatalf("re-Ship(env0) after root restart = %d, dup=%v, err=%v; want duplicate", merged, dup, err)
	}
	ingestRound(t, proto, clients, 1, leaf)
	env1, _ := exportEnvelope(t, leaf, "leaf-a", 2)
	if merged, dup, err := up2.Ship(env1); err != nil || dup || merged != n {
		t.Fatalf("Ship(env1) = %d, dup=%v, err=%v; want %d fresh", merged, dup, err, n)
	}

	// The restored open round holds exactly both rounds' tallies: n would
	// mean the fresh envelope was dropped, 3n a double-applied retry.
	if got := rootStream2.CloseRound().Reports; got != 2*n {
		t.Fatalf("restored root's round carries %d reports, want exactly %d", got, 2*n)
	}
	ledger := rootStream2.Ledger()
	if len(ledger) != 1 || ledger[0].Seq != 2 || ledger[0].Dups != 1 {
		t.Fatalf("restored ledger = %+v, want seq 2 with 1 recorded duplicate", ledger)
	}
}

// TestRootDeadlinePartialRound exercises graceful degradation: with a
// round deadline and an expected leaf count, a dead leaf delays the round
// by at most the deadline, the round is marked partial with per-leaf
// attribution, and the late envelope lands in the next round — absorbed,
// never lost.
func TestRootDeadlinePartialRound(t *testing.T) {
	const n = 16 // per leaf
	proto, err := parityFamilies[0].build()
	if err != nil {
		t.Fatal(err)
	}
	rootStream := newTestStream(t, proto)
	sub := rootStream.Subscribe()
	rootSrv := newTestServer(t, rootStream, Config{
		AcceptMerges:  true,
		RoundDeadline: 60 * time.Millisecond,
		Quorum:        1,
		ExpectLeaves:  2,
	})
	up, err := DialMerge(serveTCPAddr(t, rootSrv), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()

	leafA := newTestStream(t, proto)
	leafB := newTestStream(t, proto)
	clients := make([]longitudinal.AppendReporter, 2*n)
	for u := range clients {
		cl := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		clients[u] = cl
		target := leafA
		if u >= n {
			target = leafB
		}
		if err := target.Enroll(u, cl.WireRegistration()); err != nil {
			t.Fatal(err)
		}
	}
	report := func(s *server.Stream, lo, hi, round int) {
		for u := lo; u < hi; u++ {
			if err := s.Ingest(u, clients[u].AppendReport(nil, (u+round)%proto.K())); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitRound := func(within time.Duration) server.RoundResult {
		select {
		case res := <-sub:
			return res
		case <-time.After(within):
			t.Fatal("root never published a round")
			panic("unreachable")
		}
	}

	// Round 0: leaf B is dead. Only A's envelope arrives; the deadline
	// closes a partial round with A's reports.
	report(leafA, 0, n, 0)
	report(leafB, n, 2*n, 0) // B collects but never ships
	envA0, _ := exportEnvelope(t, leafA, "leaf-a", 1)
	if _, _, err := up.Ship(envA0); err != nil {
		t.Fatal(err)
	}
	res0 := waitRound(5 * time.Second)
	if res0.Reports != n {
		t.Fatalf("partial round published %d reports, want leaf A's %d", res0.Reports, n)
	}
	if got := rootSrv.partialRound.Load(); got != 1 {
		t.Fatalf("partial-round counter = %d, want 1", got)
	}

	// B comes back and ships its round-0 tallies late: they are absorbed
	// into the open round, and the arrival re-arms attribution.
	envB0, _ := exportEnvelope(t, leafB, "leaf-b", 1)
	if merged, dup, err := up.Ship(envB0); err != nil || dup || merged != n {
		t.Fatalf("late Ship(envB0) = %d, dup=%v, err=%v; want %d absorbed", merged, dup, err, n)
	}
	st := getStatus(t, rootSrv)
	if st.Merge == nil || st.Merge.Arrived != 1 || !st.Merge.Leaves["leaf-b"].InRound {
		t.Fatalf("root status after late arrival = %+v, want leaf-b attributed to the open round", st.Merge)
	}
	if st.Merge.Leaves["leaf-a"].InRound {
		t.Fatal("leaf-a attributed to the open round it is not part of")
	}

	// Round 1: A ships too — the second distinct arrival hits
	// ExpectLeaves and closes the round immediately, no deadline wait.
	report(leafA, 0, n, 1)
	envA1, _ := exportEnvelope(t, leafA, "leaf-a", 2)
	if _, _, err := up.Ship(envA1); err != nil {
		t.Fatal(err)
	}
	res1 := waitRound(5 * time.Second)
	if res1.Reports != 2*n {
		t.Fatalf("round 1 published %d reports, want %d (late B round 0 + A round 1)", res1.Reports, 2*n)
	}
	if got := rootSrv.partialRound.Load(); got != 1 {
		t.Fatalf("full round counted as partial: counter = %d, want still 1", got)
	}
}

// TestDrainAbandonedShipRedelivered is the drain/restart corner: the
// root's Drain deadline abandons the leaf's merge connection before the
// envelope is consumed, so the ship fails with delivery unknown — and the
// envelope must be re-shipped from the outbox once a root is back,
// landing exactly once.
func TestDrainAbandonedShipRedelivered(t *testing.T) {
	const n = 12
	proto, err := parityFamilies[0].build()
	if err != nil {
		t.Fatal(err)
	}
	rootStream := newTestStream(t, proto)
	rootSrv1 := newTestServer(t, rootStream, Config{AcceptMerges: true})
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rootSrv1.ServeTCP(l1)
	addr := l1.Addr().String()

	up, err := DialMerge(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	leafStream := newTestStream(t, proto)
	leafSrv := newTestServer(t, leafStream, Config{
		Upstream:     up,
		LeafID:       "leaf-a",
		OutboxDir:    t.TempDir(),
		ShipRetryMin: time.Millisecond,
		ShipRetryMax: 10 * time.Millisecond,
	})
	for u := 0; u < n; u++ {
		cl := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		if err := leafStream.Enroll(u, cl.WireRegistration()); err != nil {
			t.Fatal(err)
		}
		if err := leafStream.Ingest(u, cl.AppendReport(nil, u%proto.K())); err != nil {
			t.Fatal(err)
		}
	}

	// Drain the root with an immediate deadline: the leaf's established
	// merge connection is abandoned unread, so the envelope written into
	// it is never acked.
	if err := rootSrv1.Drain(time.Millisecond); err == nil {
		t.Fatal("Drain with a live idle connection met its deadline, want abandonment error")
	}
	if _, err := leafSrv.closeRound(); err == nil {
		t.Fatal("closeRound shipped through a drained root")
	}
	if got := rootSrv1.mergeFrames.Load(); got != 0 {
		t.Fatalf("drained root applied %d merge frames, want 0", got)
	}
	rootSrv1.Close()

	// Root restart on the same address; the leaf's background shipper
	// redials and redelivers the spooled envelope.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	rootSrv2 := newTestServer(t, rootStream, Config{AcceptMerges: true})
	go rootSrv2.ServeTCP(l2)
	if err := leafSrv.FlushOutbox(10 * time.Second); err != nil {
		t.Fatalf("spooled envelope never redelivered: %v", err)
	}
	if got := rootSrv2.mergeReports.Load(); got != n {
		t.Fatalf("restarted root merged %d reports, want exactly %d", got, n)
	}
	if got := rootStream.CloseRound().Reports; got != n {
		t.Fatalf("root round carries %d reports, want %d — no loss, no double count", got, n)
	}
}
