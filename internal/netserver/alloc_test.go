package netserver

// Runtime pins for the daemon's zero-allocation acceptance criterion: the
// TCP decode→tally path (readFrame → handleReport → Stream.Ingest) and
// the HTTP batch decode (decodeBatchBody) allocate nothing per report in
// the steady state. The lolohalint noalloc analyzer checks the same
// functions statically; noalloc_meta_test.go at the repo root ties the
// two suites together.

import (
	"bufio"
	"bytes"
	"testing"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/server"
)

func TestTCPDecodeTallyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	proto, err := core.NewBinary(64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := server.NewStream(proto, server.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	srv := newTestServer(t, stream, Config{})

	// AllocsPerRun calls the closure runs+1 times (one warm-up, which
	// absorbs the amortized frame-buffer growth); the replay buffer holds
	// exactly one frame per call, each from a distinct enrolled user so
	// every report lands (a duplicate rejection would allocate its error).
	const runs = 200
	var frames []byte
	payloads := make([][]byte, runs+1)
	for u := range payloads {
		cl := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		if err := stream.Enroll(u, cl.WireRegistration()); err != nil {
			t.Fatal(err)
		}
		payloads[u] = cl.AppendReport(nil, u%proto.K())
		frames = AppendReportFrame(frames, u, payloads[u])
	}
	// Warm-up round: first-sight tally work (the per-user hash table) is
	// enrollment-time cost, not steady state — same discipline as the root
	// package's TestIngestSteadyStateZeroAllocs.
	for u, p := range payloads {
		if err := stream.Ingest(u, p); err != nil {
			t.Fatal(err)
		}
	}
	stream.CloseRound()
	c := &tcpConn{srv: srv, br: bufio.NewReaderSize(bytes.NewReader(frames), 64<<10)}

	allocs := testing.AllocsPerRun(runs, func() {
		typ, body, err := c.readFrame()
		if err != nil || typ != FrameReport {
			t.Fatalf("readFrame: type 0x%02x, err %v", typ, err)
		}
		c.handleReport(body)
	})
	if allocs != 0 {
		t.Fatalf("TCP decode→tally allocates %.1f times per report, want 0", allocs)
	}
	if c.reports != runs+1 || c.reportRejected != 0 {
		t.Fatalf("tallied %d reports (%d rejected), want %d", c.reports, c.reportRejected, runs+1)
	}
}

func TestBatchDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	proto, err := core.NewBinary(64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var body []byte
	for u := 0; u < n; u++ {
		cl := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		body = AppendBatchRecord(body, u, cl.AppendReport(nil, u%proto.K()))
	}

	// The warm-up run grows ids/payloads to capacity; after that the
	// decode reuses them and the payload views alias body, so a steady
	// /v1/reports batch costs zero allocations before IngestBatch (itself
	// pinned allocation-free by the root package's suites).
	var (
		ids      []int
		payloads [][]byte
	)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		ids, payloads, err = decodeBatchBody(body, ids, payloads, 1<<20)
		if err != nil || len(ids) != n {
			t.Fatalf("decodeBatchBody: %d records, err %v", len(ids), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batch decode allocates %.1f times per batch, want 0", allocs)
	}
}
