package netserver

// Runtime pins for the daemon's zero-allocation acceptance criterion: the
// TCP decode→tally path (readFrame → handleReport → Stream.Ingest) and
// the HTTP batch decode (decodeBatchBody) allocate nothing per report in
// the steady state. The lolohalint noalloc analyzer checks the same
// functions statically; noalloc_meta_test.go at the repo root ties the
// two suites together.

import (
	"bufio"
	"bytes"
	"testing"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/server"
)

func TestTCPDecodeTallyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	proto, err := core.NewBinary(64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := server.NewStream(proto, server.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	srv := newTestServer(t, stream, Config{})

	// AllocsPerRun calls the closure runs+1 times (one warm-up, which
	// absorbs the amortized frame-buffer growth); the replay buffer holds
	// exactly one frame per call, each from a distinct enrolled user so
	// every report lands (a duplicate rejection would allocate its error).
	const runs = 200
	var frames []byte
	payloads := make([][]byte, runs+1)
	for u := range payloads {
		cl := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		if err := stream.Enroll(u, cl.WireRegistration()); err != nil {
			t.Fatal(err)
		}
		payloads[u] = cl.AppendReport(nil, u%proto.K())
		frames = AppendReportFrame(frames, u, payloads[u])
	}
	// Warm-up round: first-sight tally work (the per-user hash table) is
	// enrollment-time cost, not steady state — same discipline as the root
	// package's TestIngestSteadyStateZeroAllocs.
	for u, p := range payloads {
		if err := stream.Ingest(u, p); err != nil {
			t.Fatal(err)
		}
	}
	stream.CloseRound()
	c := &tcpConn{srv: srv, br: bufio.NewReaderSize(bytes.NewReader(frames), 64<<10)}

	allocs := testing.AllocsPerRun(runs, func() {
		typ, body, err := c.readFrame()
		if err != nil || typ != FrameReport {
			t.Fatalf("readFrame: type 0x%02x, err %v", typ, err)
		}
		c.handleReport(body)
	})
	if allocs != 0 {
		t.Fatalf("TCP decode→tally allocates %.1f times per report, want 0", allocs)
	}
	if c.reports != runs+1 || c.reportRejected != 0 {
		t.Fatalf("tallied %d reports (%d rejected), want %d", c.reports, c.reportRejected, runs+1)
	}
}

// TestTCPColumnarZeroAlloc pins the columnar acceptance criterion on the
// socket path: readFrame → handleColumnar (DecodeColumnar →
// IngestColumnar) allocates nothing per report in the steady state.
func TestTCPColumnarZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	proto, err := core.NewBinary(64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := server.NewStream(proto, server.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	srv := newTestServer(t, stream, Config{})

	stride, ok := longitudinal.ColumnarStrideOf(proto)
	if !ok {
		t.Fatal("protocol has no columnar stride")
	}
	// One columnar frame per measured call, each batch holding distinct
	// enrolled users so every report lands (duplicates allocate their
	// rejection error). AllocsPerRun's warm-up call grows the connection's
	// decode columns; the explicit warm-up round below absorbs first-sight
	// tally state (the per-user hash tables), which is enrollment-time
	// cost, not steady state.
	const runs, batch = 50, 64
	var frames []byte
	w, err := longitudinal.NewColumnarWriter(longitudinal.SpecHashOf(proto), stride)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs+1; i++ {
		w.Reset()
		for j := 0; j < batch; j++ {
			u := i*batch + j
			cl := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
			if err := stream.Enroll(u, cl.WireRegistration()); err != nil {
				t.Fatal(err)
			}
			p := cl.AppendReport(nil, u%proto.K())
			if err := w.Add(u, p); err != nil {
				t.Fatal(err)
			}
			if err := stream.Ingest(u, p); err != nil { // warm-up round
				t.Fatal(err)
			}
		}
		frames = AppendColumnarFrame(frames, w.AppendTo(nil))
	}
	stream.CloseRound()

	c := &tcpConn{srv: srv, br: bufio.NewReaderSize(bytes.NewReader(frames), 64<<10)}
	allocs := testing.AllocsPerRun(runs, func() {
		typ, body, err := c.readFrame()
		if err != nil || typ != FrameColumnar {
			t.Fatalf("readFrame: type 0x%02x, err %v", typ, err)
		}
		if !c.handleColumnar(body) {
			t.Fatal("handleColumnar reported a protocol error")
		}
	})
	if allocs != 0 {
		t.Fatalf("TCP columnar decode→tally allocates %.1f times per batch, want 0", allocs)
	}
	if want := uint64((runs + 1) * batch); c.reports != want || c.reportRejected != 0 {
		t.Fatalf("tallied %d reports (%d rejected), want %d", c.reports, c.reportRejected, want)
	}
}

// TestColumnarDecodeZeroAlloc pins the HTTP-side criterion: a steady
// ContentTypeColumnar body decodes into reused columns with zero
// allocations (IngestColumnar itself is pinned by TestTCPColumnarZeroAlloc
// and the noalloc analyzer).
func TestColumnarDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	proto, err := core.NewBinary(64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stride, _ := longitudinal.ColumnarStrideOf(proto)
	const n = 256
	w, err := longitudinal.NewColumnarWriter(longitudinal.SpecHashOf(proto), stride)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		cl := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		if err := w.Add(u, cl.AppendReport(nil, u%proto.K())); err != nil {
			t.Fatal(err)
		}
	}
	body := w.AppendTo(nil)

	var b longitudinal.ColumnarBatch
	allocs := testing.AllocsPerRun(100, func() {
		if err := longitudinal.DecodeColumnar(body, &b); err != nil || b.Count() != n {
			t.Fatalf("DecodeColumnar: %d rows, err %v", b.Count(), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("columnar decode allocates %.1f times per batch, want 0", allocs)
	}
}

func TestBatchDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	proto, err := core.NewBinary(64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var body []byte
	for u := 0; u < n; u++ {
		cl := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		body = AppendBatchRecord(body, u, cl.AppendReport(nil, u%proto.K()))
	}

	// The warm-up run grows ids/payloads to capacity; after that the
	// decode reuses them and the payload views alias body, so a steady
	// /v1/reports batch costs zero allocations before IngestBatch (itself
	// pinned allocation-free by the root package's suites).
	var (
		ids      []int
		payloads [][]byte
	)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		ids, payloads, err = decodeBatchBody(body, ids, payloads, 1<<20)
		if err != nil || len(ids) != n {
			t.Fatalf("decodeBatchBody: %d records, err %v", len(ids), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batch decode allocates %.1f times per batch, want 0", allocs)
	}
}
