package netserver

import (
	"testing"

	"github.com/loloha-ldp/loloha/internal/server"
)

// The hub's slow-subscriber contract: a client whose buffer is full when a
// round is broadcast misses that round — the hub never blocks — and the
// drop is counted.
func TestHubDropPolicy(t *testing.T) {
	h := newHub(1)
	cl := h.add()
	for round := 0; round < 3; round++ {
		h.broadcast(server.RoundResult{Round: round})
	}
	if got := <-cl.ch; got.Round != 0 {
		t.Fatalf("buffered round = %d, want 0", got.Round)
	}
	select {
	case got := <-cl.ch:
		t.Fatalf("unexpected buffered round %d; rounds 1 and 2 should have dropped", got.Round)
	default:
	}
	if clients, dropped := h.stats(); clients != 1 || dropped != 2 {
		t.Fatalf("stats = (%d clients, %d dropped), want (1, 2)", clients, dropped)
	}

	// With buffer space again, delivery resumes: the gap is visible to the
	// client as non-consecutive Round indices.
	h.broadcast(server.RoundResult{Round: 3})
	if got := <-cl.ch; got.Round != 3 {
		t.Fatalf("post-drop round = %d, want 3", got.Round)
	}

	h.remove(cl)
	if _, ok := <-cl.ch; ok {
		t.Fatal("removed client's channel still open")
	}
	h.remove(cl) // idempotent
	h.broadcast(server.RoundResult{Round: 4})
	if clients, _ := h.stats(); clients != 0 {
		t.Fatalf("clients after remove = %d, want 0", clients)
	}
}

func TestHubAddAfterClose(t *testing.T) {
	h := newHub(4)
	before := h.add()
	h.closeAll()
	h.closeAll() // idempotent
	if _, ok := <-before.ch; ok {
		t.Fatal("closeAll left a client channel open")
	}
	after := h.add()
	if _, ok := <-after.ch; ok {
		t.Fatal("add after closeAll returned an open channel")
	}
	h.broadcast(server.RoundResult{}) // must not panic or deliver
}
