package netserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/server"
)

// Raw-TCP framing: a length-prefixed envelope over the wire formats the
// library already has. Every frame is
//
//	u32 LE  body length n (0 ≤ n ≤ MaxFrameBytes)
//	u8      frame type
//	n bytes body
//
// Client → server frames:
//
//	enroll   (0x01): u64 LE userID ++ longitudinal.AppendRegistration bytes
//	report   (0x02): u64 LE userID ++ Report.AppendBinary payload
//	flush    (0x03): empty body; requests an ack
//	columnar (0x04): one longitudinal columnar batch (header + packed
//	                 ID/registration/payload columns), no per-report framing
//
// Server → client frames:
//
//	ack (0x80): 4 × u64 LE — enrolled, enrollRejected, reports,
//	            reportRejected (connection-lifetime counters)
//
// Reports and enrollments are one-way (rejections only bump counters), so
// the steady state never waits on the server; flush is the explicit sync
// point — after its ack, every prior frame on the connection has been
// applied, which is what a load generator or a parity test needs before
// closing a round. A malformed frame (unknown type, oversize length,
// short body) is a protocol error and closes the connection: framing
// corruption is not survivable, unlike a semantically rejected report.

const (
	// FrameEnroll carries one user's enrollment.
	FrameEnroll = 0x01
	// FrameReport carries one user's round payload.
	FrameReport = 0x02
	// FrameFlush requests an Ack for all prior frames.
	FrameFlush = 0x03
	// FrameColumnar carries one columnar batch of reports
	// (longitudinal.ColumnarWriter bytes). A batch whose header fails to
	// decode or whose spec hash disagrees with the server's protocol is a
	// protocol error (the producer's encoder is misconfigured) and drops
	// the connection; per-report rejections only bump counters.
	FrameColumnar = 0x04
	// FrameMerge carries one LSS1 snapshot image (persist.Append bytes) of
	// merged tallies from a collector-tree leaf. Only a root daemon
	// (Config.AcceptMerges) accepts it; elsewhere it is an unknown frame.
	// A body that fails to decode or whose spec hash disagrees with the
	// server's protocol drops the connection, exactly like a mismatched
	// columnar batch: the producer is misconfigured, not the data.
	FrameMerge = 0x05
	// FrameAck is the server's reply to FrameFlush.
	FrameAck = 0x80
	// FrameMergeAck is the server's immediate reply to a merge frame whose
	// body is an LME1 envelope: a per-envelope acknowledgement carrying
	// the envelope's sequence number, the reports merged, and whether the
	// envelope was deduplicated. Unlike the cumulative flush ack, it names
	// the exact envelope it confirms, so a leaf that redials (resetting
	// every connection-lifetime counter) still learns precisely what the
	// root applied.
	FrameMergeAck = 0x81

	frameHeaderBytes  = 5
	ackBodyBytes      = 32
	mergeAckBodyBytes = 17
	// frameMinBody is the smallest body a well-formed enroll/report frame
	// carries (the user ID); MaxFrameBytes may not be configured below it.
	frameMinBody = 8
)

// Merge envelope ack statuses.
const (
	// MergeApplied: the envelope's tallies were added to the open round.
	MergeApplied = 1
	// MergeDuplicate: the envelope's seq was at or below the root's
	// per-leaf watermark — its tallies are already in the counts, nothing
	// was reapplied, and the leaf must treat the envelope as delivered.
	MergeDuplicate = 2
)

// MergeAck is the per-envelope merge acknowledgement (FrameMergeAck body):
// u64 seq, u64 merged reports, u8 status.
type MergeAck struct {
	Seq    uint64
	Merged uint64
	Status byte
}

// Ack is the server's flush reply: connection-lifetime counters. After an
// Ack, every frame written before the flush has been applied to the
// stream.
type Ack struct {
	Enrolled       uint64
	EnrollRejected uint64
	Reports        uint64
	ReportRejected uint64
}

// ---------------------------------------------------------------------------
// Client-side frame construction (used by lolohasim's load generator, the
// examples and the tests; servers only read these).

// AppendEnrollFrame appends an enroll frame for userID to dst.
func AppendEnrollFrame(dst []byte, userID int, reg longitudinal.Registration) ([]byte, error) {
	if userID < 0 {
		return dst, fmt.Errorf("netserver: negative user ID %d not encodable", userID)
	}
	body := 8 + longitudinal.RegistrationWireSize(reg)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, FrameEnroll)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(userID))
	return longitudinal.AppendRegistration(dst, reg)
}

// AppendReportFrame appends a report frame for userID to dst. The payload
// is the protocol's steady-state wire form (Report.AppendBinary /
// AppendReporter.AppendReport bytes).
//
//loloha:noalloc
func AppendReportFrame(dst []byte, userID int, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(8+len(payload)))
	dst = append(dst, FrameReport)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(userID))
	return append(dst, payload...)
}

// AppendColumnarFrame appends a columnar batch frame to dst. batch is an
// encoded columnar batch (longitudinal.ColumnarWriter.AppendTo bytes).
//
//loloha:noalloc
func AppendColumnarFrame(dst []byte, batch []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(batch)))
	dst = append(dst, FrameColumnar)
	return append(dst, batch...)
}

// AppendMergeFrame appends a merge frame to dst. snap is an encoded LSS1
// snapshot image (persist.Append bytes); merged reports are confirmed
// through the ack's Reports counter like ordinary report frames.
//
//loloha:noalloc
func AppendMergeFrame(dst []byte, snap []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(snap)))
	dst = append(dst, FrameMerge)
	return append(dst, snap...)
}

// AppendFlushFrame appends a flush frame to dst.
func AppendFlushFrame(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	return append(dst, FrameFlush)
}

// AppendMergeAckFrame appends a per-envelope merge ack frame to dst.
//
//loloha:noalloc
func AppendMergeAckFrame(dst []byte, ack MergeAck) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, mergeAckBodyBytes)
	dst = append(dst, FrameMergeAck)
	dst = binary.LittleEndian.AppendUint64(dst, ack.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, ack.Merged)
	return append(dst, ack.Status)
}

// ReadMergeAck reads one per-envelope merge ack frame from r (as written
// by a root in reply to an envelope merge frame).
func ReadMergeAck(r io.Reader) (MergeAck, error) {
	var b [frameHeaderBytes + mergeAckBodyBytes]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return MergeAck{}, err
	}
	if n := binary.LittleEndian.Uint32(b[:4]); n != mergeAckBodyBytes {
		return MergeAck{}, fmt.Errorf("netserver: merge ack body %d bytes, want %d", n, mergeAckBodyBytes)
	}
	if b[4] != FrameMergeAck {
		return MergeAck{}, fmt.Errorf("netserver: frame type 0x%02x, want merge ack", b[4])
	}
	ack := MergeAck{
		Seq:    binary.LittleEndian.Uint64(b[5:]),
		Merged: binary.LittleEndian.Uint64(b[13:]),
		Status: b[21],
	}
	if ack.Status != MergeApplied && ack.Status != MergeDuplicate {
		return MergeAck{}, fmt.Errorf("netserver: merge ack status 0x%02x unknown", ack.Status)
	}
	return ack, nil
}

// ReadAck reads one ack frame from r (as written by the server in reply
// to a flush).
func ReadAck(r io.Reader) (Ack, error) {
	var b [frameHeaderBytes + ackBodyBytes]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return Ack{}, err
	}
	if n := binary.LittleEndian.Uint32(b[:4]); n != ackBodyBytes {
		return Ack{}, fmt.Errorf("netserver: ack body %d bytes, want %d", n, ackBodyBytes)
	}
	if b[4] != FrameAck {
		return Ack{}, fmt.Errorf("netserver: frame type 0x%02x, want ack", b[4])
	}
	return Ack{
		Enrolled:       binary.LittleEndian.Uint64(b[5:]),
		EnrollRejected: binary.LittleEndian.Uint64(b[13:]),
		Reports:        binary.LittleEndian.Uint64(b[21:]),
		ReportRejected: binary.LittleEndian.Uint64(b[29:]),
	}, nil
}

// ---------------------------------------------------------------------------
// Server-side connection loop.

// tcpConn is one accepted raw-frame connection. The read loop owns all of
// its state — one frame buffer, one buffered reader/writer, four counters
// — so the steady state (report frame → Ingest) touches no shared memory
// beyond the stream's shard and performs zero allocations per report.
type tcpConn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	hdr [frameHeaderBytes]byte
	buf []byte // reusable frame body, grown to the largest frame seen
	// col is the connection's reusable columnar decode target: its column
	// slices grow to the largest batch seen, so steady-state columnar
	// frames decode and tally with zero allocations per report.
	col longitudinal.ColumnarBatch

	enrolled       uint64
	enrollRejected uint64
	reports        uint64
	reportRejected uint64
}

func newTCPConn(s *Server, nc net.Conn) *tcpConn {
	return &tcpConn{
		srv: s,
		nc:  nc,
		br:  bufio.NewReaderSize(nc, 64<<10),
		bw:  bufio.NewWriterSize(nc, 1<<10),
	}
}

// serve runs the read loop until EOF, a read error, or a protocol error.
func (c *tcpConn) serve() {
	defer func() {
		c.srv.tcpReports.Add(c.reports)
		c.srv.tcpRejected.Add(c.enrollRejected + c.reportRejected)
	}()
	for {
		typ, body, err := c.readFrame()
		if err != nil {
			return // EOF (clean close), read error, or oversize frame
		}
		switch typ {
		case FrameReport:
			c.handleReport(body)
		case FrameColumnar:
			if !c.handleColumnar(body) {
				return // undecodable or wrong-protocol batch: protocol error
			}
		case FrameMerge:
			if !c.handleMerge(body) {
				return // not a root, undecodable, or wrong-protocol snapshot
			}
		case FrameEnroll:
			c.handleEnroll(body)
		case FrameFlush:
			if err := c.writeAck(); err != nil {
				return
			}
		default:
			return // unknown frame type: protocol error, drop the conn
		}
	}
}

// readFrame reads one frame into the connection's reusable buffer. The
// returned body aliases c.buf and is valid until the next call. The
// length is validated against MaxFrameBytes before any allocation sized
// by it.
//
//loloha:noalloc
func (c *tcpConn) readFrame() (byte, []byte, error) {
	if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(c.hdr[:4]))
	if n > c.srv.maxFrame {
		return 0, nil, fmt.Errorf("netserver: frame body %d bytes exceeds limit %d", n, c.srv.maxFrame)
	}
	if cap(c.buf) < n {
		//loloha:alloc-ok amortized frame-buffer growth, bounded by MaxFrameBytes
		c.buf = make([]byte, n)
	}
	body := c.buf[:n]
	if _, err := io.ReadFull(c.br, body); err != nil {
		return 0, nil, err
	}
	return c.hdr[4], body, nil
}

// handleReport applies one report frame: parse the user ID, tally the
// payload. This is the decode→tally hot path of the daemon — zero
// allocations per report in the steady state (rejections may allocate
// their error, which the server drops after counting).
//
//loloha:noalloc
func (c *tcpConn) handleReport(body []byte) {
	if len(body) < 8 {
		c.reportRejected++
		return
	}
	id := binary.LittleEndian.Uint64(body)
	if id > math.MaxInt {
		c.reportRejected++
		return
	}
	if err := c.srv.stream.Ingest(int(id), body[8:]); err != nil {
		c.reportRejected++
		return
	}
	c.reports++
}

// handleColumnar applies one columnar batch frame: decode the packed
// columns into the connection's reusable batch and tally them in one
// IngestColumnar call. Returns false on a protocol error — a body that
// fails structural decoding, or a batch whose spec hash/stride disagrees
// with the server's protocol (server.ErrColumnarMismatch): both mean the
// producer's encoder is broken, which, like framing corruption, is not
// survivable. Per-report rejections bump counters and keep the
// connection. Zero allocations per report in the steady state.
//
//loloha:noalloc
func (c *tcpConn) handleColumnar(body []byte) bool {
	if err := longitudinal.DecodeColumnar(body, &c.col); err != nil {
		return false
	}
	n := uint64(c.col.Count())
	err := c.srv.stream.IngestColumnar(&c.col)
	if err != nil && errors.Is(err, server.ErrColumnarMismatch) {
		return false
	}
	rejected := uint64(countJoined(err))
	c.reports += n - rejected
	c.reportRejected += rejected
	return true
}

// handleMerge applies one merge frame: decode the LSS1 image and add its
// tallies into the stream's open round. Returns false on a protocol
// error — a daemon that is not a root (Config.AcceptMerges unset), a body
// that fails structural decoding, or a snapshot whose spec hash disagrees
// with the server's protocol (server.ErrSnapshotMismatch): all mean the
// sender is misconfigured, which, like framing corruption, is not
// survivable. Merged reports ride the connection's reports counter, so a
// leaf confirms delivery through the ordinary flush/ack round trip.
func (c *tcpConn) handleMerge(body []byte) bool {
	if !c.srv.acceptMerges {
		return false
	}
	if persist.IsEnvelope(body) {
		return c.handleMergeEnvelope(body)
	}
	snap, err := persist.Decode(body)
	if err != nil {
		c.srv.mergeBad.Add(1)
		return false
	}
	n, err := c.srv.stream.MergeRemote(snap)
	if err != nil {
		c.srv.mergeBad.Add(1)
		return false
	}
	c.reports += uint64(n)
	c.srv.mergeFrames.Add(1)
	c.srv.mergeReports.Add(uint64(n))
	return true
}

// handleMergeEnvelope applies one LME1 merge envelope and replies with a
// per-envelope ack — the exactly-once half of the merge path. A duplicate
// (seq at or below the leaf's applied watermark) is acknowledged without
// decoding its payload, let alone reapplying it, so a retry storm costs
// the root one header parse per envelope. Malformed envelopes and spec
// mismatches drop the connection like any other protocol error.
func (c *tcpConn) handleMergeEnvelope(body []byte) bool {
	h, err := persist.ParseEnvelopeHeader(body)
	if err != nil {
		c.srv.mergeBad.Add(1)
		return false
	}
	if !c.srv.stream.ShouldApply(h.Leaf, h.Seq) {
		c.srv.stream.RecordDuplicate(h.Leaf)
		c.srv.mergeDup.Add(1)
		return c.writeMergeAck(MergeAck{Seq: h.Seq, Status: MergeDuplicate})
	}
	env, err := persist.DecodeEnvelope(body)
	if err != nil {
		c.srv.mergeBad.Add(1)
		return false
	}
	n, dup, err := c.srv.stream.MergeEnvelope(env)
	if err != nil {
		c.srv.mergeBad.Add(1)
		return false
	}
	if dup {
		// ShouldApply raced another connection shipping the same envelope;
		// MergeEnvelope's ledger check is the authoritative one.
		c.srv.mergeDup.Add(1)
		return c.writeMergeAck(MergeAck{Seq: h.Seq, Status: MergeDuplicate})
	}
	c.reports += uint64(n)
	c.srv.mergeFrames.Add(1)
	c.srv.mergeReports.Add(uint64(n))
	c.srv.noteLeafArrival(env.Leaf, n)
	return c.writeMergeAck(MergeAck{Seq: h.Seq, Merged: uint64(n), Status: MergeApplied})
}

// writeMergeAck replies to one envelope immediately (no flush needed):
// the ack is the leaf's delivery receipt, so it must not wait on anything
// else the connection may carry.
func (c *tcpConn) writeMergeAck(ack MergeAck) bool {
	var b [frameHeaderBytes + mergeAckBodyBytes]byte
	if _, err := c.bw.Write(AppendMergeAckFrame(b[:0], ack)); err != nil {
		return false
	}
	return c.bw.Flush() == nil
}

// handleEnroll applies one enroll frame. Enrollment is one-time per user
// (cold), so this path may allocate (DecodeRegistration copies the
// sampled buckets out of the frame buffer, which the next frame
// overwrites).
func (c *tcpConn) handleEnroll(body []byte) {
	if len(body) < 8 {
		c.enrollRejected++
		return
	}
	id := binary.LittleEndian.Uint64(body)
	if id > math.MaxInt {
		c.enrollRejected++
		return
	}
	reg, rest, err := longitudinal.DecodeRegistration(body[8:])
	if err != nil || len(rest) != 0 {
		c.enrollRejected++
		return
	}
	if err := c.srv.stream.Enroll(int(id), reg); err != nil {
		c.enrollRejected++
		return
	}
	c.enrolled++
}

// writeAck replies to a flush with the connection's counters.
func (c *tcpConn) writeAck() error {
	var b [frameHeaderBytes + ackBodyBytes]byte
	binary.LittleEndian.PutUint32(b[:4], ackBodyBytes)
	b[4] = FrameAck
	binary.LittleEndian.PutUint64(b[5:], c.enrolled)
	binary.LittleEndian.PutUint64(b[13:], c.enrollRejected)
	binary.LittleEndian.PutUint64(b[21:], c.reports)
	binary.LittleEndian.PutUint64(b[29:], c.reportRejected)
	if _, err := c.bw.Write(b[:]); err != nil {
		return err
	}
	return c.bw.Flush()
}
