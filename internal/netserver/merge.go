package netserver

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/loloha-ldp/loloha/internal/persist"
)

// MergeClient ships snapshot tallies to a collector-tree parent over one
// raw-frame TCP connection: each Send writes a merge frame followed by a
// flush, and confirms delivery through the ack's cumulative Reports
// counter — the same one-way-frames-plus-explicit-sync contract the
// report path uses, so a confirmed Send means the parent has applied the
// tallies, not merely received the bytes.
//
// The client reconnects lazily: a Send after a transport error redials.
// It is safe for concurrent use; Sends serialize.
type MergeClient struct {
	addr    string
	timeout time.Duration

	mu    sync.Mutex
	nc    net.Conn
	bw    *bufio.Writer
	buf   []byte // frame scratch, reused across Sends
	acked uint64 // cumulative Reports from the last ack
}

// DialMerge returns a merge client for the parent at addr (a raw-frame
// TCP address, not HTTP). The first connection is established eagerly so
// a mistyped parent fails at startup, not at the first round. timeout
// bounds each Send's dial and round trip; 0 means 10s.
func DialMerge(addr string, timeout time.Duration) (*MergeClient, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c := &MergeClient{addr: addr, timeout: timeout}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Addr returns the parent's address.
func (c *MergeClient) Addr() string { return c.addr }

func (c *MergeClient) connectLocked() error {
	nc, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("netserver: dialing merge parent %s: %w", c.addr, err)
	}
	c.nc = nc
	c.bw = bufio.NewWriterSize(nc, 64<<10)
	c.acked = 0 // counters are connection-lifetime
	return nil
}

// Send ships one snapshot and returns the number of reports the parent
// confirmed merging. On any transport or protocol error the connection
// is dropped (the next Send redials) and the snapshot is NOT applied —
// the parent rejects mismatched or undecodable snapshots by closing the
// connection, which surfaces here as an ack read error.
func (c *MergeClient) Send(snap *persist.Snapshot) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nc == nil {
		if err := c.connectLocked(); err != nil {
			return 0, err
		}
	}
	var err error
	c.buf, err = persist.Append(c.buf[:0], snap)
	if err != nil {
		return 0, fmt.Errorf("netserver: encoding merge snapshot: %w", err)
	}
	frame := AppendMergeFrame(nil, c.buf)
	frame = AppendFlushFrame(frame)
	c.nc.SetDeadline(time.Now().Add(c.timeout))
	if _, err := c.bw.Write(frame); err != nil {
		c.dropLocked()
		return 0, fmt.Errorf("netserver: writing merge frame to %s: %w", c.addr, err)
	}
	if err := c.bw.Flush(); err != nil {
		c.dropLocked()
		return 0, fmt.Errorf("netserver: writing merge frame to %s: %w", c.addr, err)
	}
	ack, err := ReadAck(c.nc)
	if err != nil {
		c.dropLocked()
		return 0, fmt.Errorf("netserver: merge rejected by %s (mismatched snapshot drops the connection): %w", c.addr, err)
	}
	merged := ack.Reports - c.acked
	c.acked = ack.Reports
	return int(merged), nil
}

// Close closes the connection; a later Send redials.
func (c *MergeClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nc == nil {
		return nil
	}
	err := c.nc.Close()
	c.nc, c.bw = nil, nil
	return err
}

func (c *MergeClient) dropLocked() {
	if c.nc != nil {
		c.nc.Close()
	}
	c.nc, c.bw = nil, nil
}
