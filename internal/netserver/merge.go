package netserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/loloha-ldp/loloha/internal/persist"
)

// ContentTypeEnvelope selects the LME1 merge-envelope body format on
// POST /v1/merge; a raw LSS1 body (any other content type) still takes
// the legacy cumulative path.
const ContentTypeEnvelope = "application/x-loloha-envelope"

// MergeSender ships encoded LME1 merge envelopes to a collector-tree
// parent and returns the parent's per-envelope acknowledgement. The
// contract is exactly-once delivery over an at-least-once transport: a
// Ship may be retried indefinitely with the same envelope bytes — the
// parent's ledger turns every redelivery into a duplicate ack, never a
// double count. An error means delivery is UNKNOWN (the envelope may or
// may not have been applied) and the caller must retry the same bytes.
type MergeSender interface {
	// Ship delivers one envelope (persist.AppendEnvelope bytes) and
	// returns the reports the parent merged and whether the parent
	// reported the envelope as a duplicate (already applied).
	Ship(env []byte) (merged int, duplicate bool, err error)
	// Addr identifies the parent (address or URL) for logs and errors.
	Addr() string
	Close() error
}

// NewMergeSender returns a sender for target: an http:// or https:// URL
// ships through POST /v1/merge, anything else is a raw-frame TCP address.
// timeout bounds each Ship's dial and round trip; 0 means 10s.
func NewMergeSender(target string, timeout time.Duration) (MergeSender, error) {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		return NewHTTPMergeClient(target, timeout), nil
	}
	return DialMerge(target, timeout)
}

// MergeClient ships merge envelopes to a collector-tree parent over one
// raw-frame TCP connection: each Ship writes a merge frame carrying the
// envelope and reads the per-envelope ack (FrameMergeAck), so a confirmed
// Ship means the parent has applied (or deduplicated) exactly that
// envelope — there is no connection-lifetime state to lose on a redial.
//
// The client reconnects lazily: a Ship after a transport error redials.
// It is safe for concurrent use; Ships serialize.
type MergeClient struct {
	addr    string
	timeout time.Duration

	mu  sync.Mutex
	nc  net.Conn
	bw  *bufio.Writer
	buf []byte // frame scratch, reused across Ships
}

// DialMerge returns a merge client for the parent at addr (a raw-frame
// TCP address, not HTTP). The first connection is established eagerly so
// a mistyped parent fails at startup, not at the first round. timeout
// bounds each Ship's dial and round trip; 0 means 10s.
func DialMerge(addr string, timeout time.Duration) (*MergeClient, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c := &MergeClient{addr: addr, timeout: timeout}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Addr returns the parent's address.
func (c *MergeClient) Addr() string { return c.addr }

func (c *MergeClient) connectLocked() error {
	nc, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("netserver: dialing merge parent %s: %w", c.addr, err)
	}
	c.nc = nc
	c.bw = bufio.NewWriterSize(nc, 64<<10)
	return nil
}

// Ship delivers one envelope and returns the parent's per-envelope ack.
// On any transport or protocol error the connection is dropped (the next
// Ship redials) and delivery is unknown: the caller retries the same
// bytes, which the parent's ledger makes safe.
func (c *MergeClient) Ship(env []byte) (int, bool, error) {
	h, err := persist.ParseEnvelopeHeader(env)
	if err != nil {
		return 0, false, fmt.Errorf("netserver: refusing to ship a malformed envelope: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nc == nil {
		if err := c.connectLocked(); err != nil {
			return 0, false, err
		}
	}
	c.buf = AppendMergeFrame(c.buf[:0], env)
	c.nc.SetDeadline(time.Now().Add(c.timeout))
	if _, err := c.bw.Write(c.buf); err != nil {
		c.dropLocked()
		return 0, false, fmt.Errorf("netserver: writing merge envelope to %s: %w", c.addr, err)
	}
	if err := c.bw.Flush(); err != nil {
		c.dropLocked()
		return 0, false, fmt.Errorf("netserver: writing merge envelope to %s: %w", c.addr, err)
	}
	ack, err := ReadMergeAck(c.nc)
	if err != nil {
		c.dropLocked()
		return 0, false, fmt.Errorf("netserver: merge envelope unconfirmed by %s (mismatched snapshot drops the connection): %w", c.addr, err)
	}
	if ack.Seq != h.Seq {
		c.dropLocked()
		return 0, false, fmt.Errorf("netserver: %s acked seq %d, shipped %d", c.addr, ack.Seq, h.Seq)
	}
	return int(ack.Merged), ack.Status == MergeDuplicate, nil
}

// Close closes the connection; a later Ship redials.
func (c *MergeClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nc == nil {
		return nil
	}
	err := c.nc.Close()
	c.nc, c.bw = nil, nil
	return err
}

func (c *MergeClient) dropLocked() {
	if c.nc != nil {
		c.nc.Close()
	}
	c.nc, c.bw = nil, nil
}

// HTTPMergeClient ships merge envelopes through POST /v1/merge — the
// transport for trees whose interior links cross HTTP-only networks. The
// delivery contract is identical to the TCP client's: per-envelope acks,
// retry-safe, duplicate-aware.
type HTTPMergeClient struct {
	base string
	hc   *http.Client
}

// NewHTTPMergeClient returns an HTTP merge client for the root at base
// (e.g. "http://host:port"). timeout bounds each Ship; 0 means 10s.
func NewHTTPMergeClient(base string, timeout time.Duration) *HTTPMergeClient {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &HTTPMergeClient{
		base: strings.TrimSuffix(base, "/"),
		hc:   &http.Client{Timeout: timeout},
	}
}

// Addr returns the root's base URL.
func (c *HTTPMergeClient) Addr() string { return c.base }

// Ship posts one envelope and returns the root's per-envelope ack.
func (c *HTTPMergeClient) Ship(env []byte) (int, bool, error) {
	h, err := persist.ParseEnvelopeHeader(env)
	if err != nil {
		return 0, false, fmt.Errorf("netserver: refusing to ship a malformed envelope: %w", err)
	}
	resp, err := c.hc.Post(c.base+"/v1/merge", ContentTypeEnvelope, bytes.NewReader(env))
	if err != nil {
		return 0, false, fmt.Errorf("netserver: shipping merge envelope to %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return 0, false, fmt.Errorf("netserver: reading merge ack from %s: %w", c.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("netserver: %s rejected merge envelope: status %d: %s",
			c.base, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var ack struct {
		Seq       uint64 `json:"seq"`
		Merged    int    `json:"merged"`
		Duplicate bool   `json:"duplicate"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		return 0, false, fmt.Errorf("netserver: decoding merge ack from %s: %w", c.base, err)
	}
	if ack.Seq != h.Seq {
		return 0, false, fmt.Errorf("netserver: %s acked seq %d, shipped %d", c.base, ack.Seq, h.Seq)
	}
	return ack.Merged, ack.Duplicate, nil
}

// Close releases idle connections.
func (c *HTTPMergeClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}
