package netserver

// Collector-tree and drain tests: leaves shipping merged tallies to a
// root must leave the root's rounds bit-identical to one daemon seeing
// every report, over both merge transports (TCP frame 0x05 and POST
// /v1/merge); merge ingestion must be off unless configured; and Drain
// must apply a batch that is in flight when shutdown begins.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/randsrc"
	"github.com/loloha-ldp/loloha/internal/server"
)

// serveTCPAddr attaches a raw-TCP front to srv and returns its address.
func serveTCPAddr(t testing.TB, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	return l.Addr().String()
}

// treeClients enrolls n users in ref and, partitioned by u%leaves, in the
// leaf streams, and returns the clients.
func treeClients(t *testing.T, proto longitudinal.Protocol, ref *server.Stream,
	leaves []*server.Stream, n int) []longitudinal.AppendReporter {
	t.Helper()
	clients := make([]longitudinal.AppendReporter, n)
	for u := 0; u < n; u++ {
		cl := proto.NewClient(randsrc.Derive(41, uint64(u))).(longitudinal.AppendReporter)
		clients[u] = cl
		if err := ref.Enroll(u, cl.WireRegistration()); err != nil {
			t.Fatal(err)
		}
		if err := leaves[u%len(leaves)].Enroll(u, cl.WireRegistration()); err != nil {
			t.Fatal(err)
		}
	}
	return clients
}

func TestCollectorTreeParityTCP(t *testing.T) {
	const n, rounds = 96, 3
	for _, family := range parityFamilies {
		for _, nleaves := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/leaves=%d", family.name, nleaves), func(t *testing.T) {
				proto, err := family.build()
				if err != nil {
					t.Fatal(err)
				}
				ref := newTestStream(t, proto)
				rootStream := newTestStream(t, proto)
				rootSrv := newTestServer(t, rootStream, Config{AcceptMerges: true})
				rootAddr := serveTCPAddr(t, rootSrv)

				leafStreams := make([]*server.Stream, nleaves)
				leafSrvs := make([]*Server, nleaves)
				for i := range leafStreams {
					leafStreams[i] = newTestStream(t, proto)
					up, err := DialMerge(rootAddr, 5*time.Second)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { up.Close() })
					leafSrvs[i] = newTestServer(t, leafStreams[i], Config{
						Upstream: up,
						LeafID:   fmt.Sprintf("leaf-%d", i),
					})
				}
				clients := treeClients(t, proto, ref, leafStreams, n)

				for round := 0; round < rounds; round++ {
					for u, cl := range clients {
						payload := cl.AppendReport(nil, (u*5+round)%proto.K())
						if err := ref.Ingest(u, payload); err != nil {
							t.Fatal(err)
						}
						if err := leafStreams[u%nleaves].Ingest(u, payload); err != nil {
							t.Fatal(err)
						}
					}
					refRes := ref.CloseRound()

					// Each leaf's closeRound spools and ships its round
					// envelope; the per-envelope ack confirms delivery, so by
					// the time it returns the root has applied the tallies.
					partReports := 0
					for i, srv := range leafSrvs {
						res, err := srv.closeRound()
						if err != nil {
							t.Fatalf("leaf %d round %d: %v", i, round, err)
						}
						partReports += res.Reports
					}
					if partReports != n {
						t.Fatalf("round %d: leaves published %d local reports, want %d", round, partReports, n)
					}
					rootRes := rootStream.CloseRound()
					if rootRes.Reports != refRes.Reports || rootRes.Round != refRes.Round {
						t.Fatalf("round %d: root %d reports (round %d), ref %d (round %d)",
							round, rootRes.Reports, rootRes.Round, refRes.Reports, refRes.Round)
					}
					if !sameFloats(rootRes.Raw, refRes.Raw) || !sameFloats(rootRes.Estimates, refRes.Estimates) {
						t.Fatalf("round %d: root estimates diverge from single-node reference", round)
					}
				}
				if got := rootSrv.mergeFrames.Load(); got != uint64(nleaves*rounds) {
					t.Fatalf("root applied %d merge frames, want %d", got, nleaves*rounds)
				}
				for i, srv := range leafSrvs {
					if got := srv.shipped.Load(); got != rounds {
						t.Fatalf("leaf %d shipped %d rounds, want %d", i, got, rounds)
					}
				}
			})
		}
	}
}

func TestCollectorTreeParityHTTP(t *testing.T) {
	const n, rounds, nleaves = 64, 2, 2
	proto, err := parityFamilies[0].build()
	if err != nil {
		t.Fatal(err)
	}
	ref := newTestStream(t, proto)
	rootStream := newTestStream(t, proto)
	rootSrv := newTestServer(t, rootStream, Config{AcceptMerges: true})
	ts := httptest.NewServer(rootSrv.Handler())
	defer ts.Close()

	leafStreams := make([]*server.Stream, nleaves)
	for i := range leafStreams {
		leafStreams[i] = newTestStream(t, proto)
	}
	clients := treeClients(t, proto, ref, leafStreams, n)

	for round := 0; round < rounds; round++ {
		for u, cl := range clients {
			payload := cl.AppendReport(nil, (u*3+round)%proto.K())
			if err := ref.Ingest(u, payload); err != nil {
				t.Fatal(err)
			}
			if err := leafStreams[u%nleaves].Ingest(u, payload); err != nil {
				t.Fatal(err)
			}
		}
		refRes := ref.CloseRound()
		merged := 0
		for _, leaf := range leafStreams {
			_, snap, err := leaf.CloseRoundExport()
			if err != nil {
				t.Fatal(err)
			}
			enc, err := persist.Append(nil, snap)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/merge", "application/octet-stream", bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			var got struct {
				Merged int `json:"merged"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d merge POST: status %d", round, resp.StatusCode)
			}
			merged += got.Merged
		}
		if merged != n {
			t.Fatalf("round %d: root confirmed %d merged reports, want %d", round, merged, n)
		}
		rootRes := rootStream.CloseRound()
		if rootRes.Reports != refRes.Reports ||
			!sameFloats(rootRes.Raw, refRes.Raw) || !sameFloats(rootRes.Estimates, refRes.Estimates) {
			t.Fatalf("round %d: root round diverges from single-node reference", round)
		}
	}
}

// TestMergeRejections pins the gate: merges are off by default (TCP frame
// drops the connection, HTTP route does not exist), and a root rejects a
// snapshot built for another protocol without applying anything.
func TestMergeRejections(t *testing.T) {
	proto, err := parityFamilies[0].build()
	if err != nil {
		t.Fatal(err)
	}
	other, err := parityFamilies[1].build()
	if err != nil {
		t.Fatal(err)
	}
	otherLeaf := newTestStream(t, other)
	cl := other.NewClient(1).(longitudinal.AppendReporter)
	if err := otherLeaf.Enroll(1, cl.WireRegistration()); err != nil {
		t.Fatal(err)
	}
	if err := otherLeaf.Ingest(1, cl.AppendReport(nil, 0)); err != nil {
		t.Fatal(err)
	}
	_, mismatched, err := otherLeaf.CloseRoundExport()
	if err != nil {
		t.Fatal(err)
	}
	encMismatched, err := persist.Append(nil, mismatched)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("disabled-by-default", func(t *testing.T) {
		srv := newTestServer(t, newTestStream(t, proto), Config{})
		conn := dialTCPServer(t, srv)
		if _, err := conn.Write(AppendMergeFrame(nil, encMismatched)); err != nil {
			t.Fatal(err)
		}
		conn.Write(AppendFlushFrame(nil))
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := ReadAck(conn); err == nil {
			t.Fatal("merge frame at a non-root answered with an ack, want dropped connection")
		}

		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/merge", "application/octet-stream", bytes.NewReader(encMismatched))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("/v1/merge at a non-root: status %d, want 404", resp.StatusCode)
		}
	})

	t.Run("mismatched-spec", func(t *testing.T) {
		rootStream := newTestStream(t, proto)
		srv := newTestServer(t, rootStream, Config{AcceptMerges: true})
		addr := serveTCPAddr(t, srv)
		up, err := DialMerge(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer up.Close()
		badEnv, err := persist.AppendEnvelope(nil, &persist.Envelope{
			Leaf: "rogue", Round: 0, Seq: 1, Snap: mismatched,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := up.Ship(badEnv); err == nil {
			t.Fatal("Ship of a mismatched snapshot succeeded, want dropped connection")
		}

		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		for name, body := range map[string][]byte{
			"mismatched": encMismatched,
			"garbage":    []byte("not a snapshot"),
		} {
			resp, err := http.Post(ts.URL+"/v1/merge", "application/octet-stream", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s merge: status %d, want 400", name, resp.StatusCode)
			}
		}
		if srv.mergeBad.Load() < 3 {
			t.Fatalf("rejected-merge counter = %d, want at least 3", srv.mergeBad.Load())
		}
		if srv.mergeReports.Load() != 0 || rootStream.Pending() != 0 {
			t.Fatal("rejected merges must not tally anything")
		}
	})
}

// TestDrainInFlightBatch starts a drain while a TCP connection is live,
// then ships a batch over it: the connection's buffered frames must be
// consumed and acked before the drain completes, and a snapshot taken
// after the drain (the daemon's shutdown sequence) must carry them.
func TestDrainInFlightBatch(t *testing.T) {
	proto, err := parityFamilies[0].build()
	if err != nil {
		t.Fatal(err)
	}
	stream := newTestStream(t, proto)
	srv := newTestServer(t, stream, Config{})
	addr := serveTCPAddr(t, srv)

	// HTTP front on a real listener so Drain's http.Server.Shutdown path
	// runs too.
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.ServeHTTP(hl) }()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := proto.NewClient(9).(longitudinal.AppendReporter)
	frames, err := AppendEnrollFrame(nil, 9, cl.WireRegistration())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frames); err != nil {
		t.Fatal(err)
	}
	if ack := flushAndAck(t, conn); ack.Enrolled != 1 {
		t.Fatalf("enroll ack = %+v", ack)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(10 * time.Second) }()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}
	// New connections must be refused once draining.
	if nc, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := nc.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("dial during drain: got live connection, want refused or closed")
		}
		nc.Close()
	}

	// The in-flight batch: written while the drain is waiting. The read
	// deadline Drain set must not cut it off — the loop consumes and acks
	// buffered frames until the client hangs up.
	batch := AppendReportFrame(nil, 9, cl.AppendReport(nil, 3))
	batch = AppendFlushFrame(batch)
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	ack := flushAndAck(t, conn)
	if ack.Reports != 1 || ack.ReportRejected != 0 {
		t.Fatalf("in-flight batch ack = %+v, want 1 report", ack)
	}
	conn.Close()

	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-httpDone; err != nil {
		t.Fatalf("ServeHTTP after drain: %v", err)
	}

	// Shutdown sequence: the post-drain snapshot carries the batch.
	if got := stream.Pending(); got != 1 {
		t.Fatalf("pending after drain = %d, want 1", got)
	}
	var buf bytes.Buffer
	if err := stream.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := persist.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reports() != 1 {
		t.Fatalf("post-drain snapshot carries %d reports, want 1", snap.Reports())
	}
}
