// Package faultnet is a fault-injecting TCP proxy for exercising the
// collector tree's exactly-once delivery under the failures that real
// networks produce: dropped connections, delays, mid-frame truncation,
// acknowledgements that vanish after the payload was applied, and
// connections reset between apply and ack.
//
// A Proxy sits between a merge client and its parent (any TCP protocol —
// the raw merge frames and HTTP both ride it) and applies a scripted
// Rule to each accepted connection, in accept order. Scripts make chaos
// deterministic: a test states "the first two connections lose their
// acks, the third is clean" and asserts the exact retry/dedup counters
// that schedule must produce, instead of sampling randomness and hoping.
//
// The two ack-side faults are the interesting ones for exactly-once
// semantics: BlackholeDown and ResetAfterReply both let the upstream
// APPLY the envelope while the shipper sees a failure, so a correct leaf
// must retry and a correct root must deduplicate. DropConn, Delay and
// TruncateUpstream fail before anything is applied, exercising the
// plain retry path.
package faultnet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault selects what a connection's Rule does to the traffic.
type Fault int

const (
	// None forwards both directions untouched.
	None Fault = iota
	// DropConn closes the client connection immediately on accept,
	// before any byte flows — a refused/reset parent.
	DropConn
	// Delay forwards untouched after an initial pause — a congested or
	// slow-to-accept parent. The pause must stay under the client's
	// timeout for the connection to survive.
	Delay
	// TruncateUpstream forwards exactly TruncateAfter client→server
	// bytes, then severs both sides — a connection dying mid-frame. The
	// upstream sees a torn frame and must not apply it.
	TruncateUpstream
	// BlackholeDown forwards client→server untouched and discards every
	// server→client byte — the upstream applies and acknowledges, but
	// the acknowledgement never arrives; the client can only time out.
	BlackholeDown
	// ResetAfterReply forwards client→server untouched, waits for the
	// first server→client byte (proof the upstream processed the
	// request), then severs both sides without delivering it — the
	// tightest window: applied, acked, reset.
	ResetAfterReply
)

// String names the fault for test output.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case DropConn:
		return "drop-conn"
	case Delay:
		return "delay"
	case TruncateUpstream:
		return "truncate"
	case BlackholeDown:
		return "blackhole-ack"
	case ResetAfterReply:
		return "reset-after-apply"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Rule is one connection's scripted fault.
type Rule struct {
	Fault Fault
	// Delay is the initial pause for the Delay fault.
	Delay time.Duration
	// TruncateAfter is how many client→server bytes TruncateUpstream
	// forwards before severing. Pick a value inside the frame under test
	// to guarantee the tear lands mid-frame.
	TruncateAfter int
}

// Script assigns Rules to connections: connection i (0-based, accept
// order) gets Plan[i]; connections past the plan get Default. The zero
// Script forwards everything untouched.
type Script struct {
	Plan    []Rule
	Default Rule
}

func (s *Script) rule(i int) Rule {
	if i < len(s.Plan) {
		return s.Plan[i]
	}
	return s.Default
}

// Proxy is a running fault-injecting proxy. Create with New, point the
// client at Addr, stop with Close.
type Proxy struct {
	target string
	script Script
	ln     net.Listener

	accepted atomic.Int64 // connections accepted (rule index source)
	faulted  atomic.Int64 // connections that got a non-None rule

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// New starts a proxy on a loopback port forwarding to target.
func New(target string, script Script) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{target: target, script: script, ln: ln, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial instead of the real target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted returns how many connections the proxy has accepted — the
// index the next connection's rule will be chosen by.
func (p *Proxy) Accepted() int { return int(p.accepted.Load()) }

// Faulted returns how many connections received a non-None rule.
func (p *Proxy) Faulted() int { return int(p.faulted.Load()) }

// Close stops accepting and severs every live connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cli, err := p.ln.Accept()
		if err != nil {
			return // Close, or a fatal listener error; either way, done
		}
		i := int(p.accepted.Add(1)) - 1
		rule := p.script.rule(i)
		if rule.Fault != None {
			p.faulted.Add(1)
		}
		if rule.Fault == DropConn {
			cli.Close()
			continue
		}
		if !p.track(cli) {
			cli.Close()
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.untrack(cli)
			p.handle(cli, rule)
		}()
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// handle runs one connection's rule to completion. Closing either leg
// unblocks the opposite copy, so a severed direction tears the whole
// connection down — exactly what a real mid-stream failure does.
func (p *Proxy) handle(cli net.Conn, rule Rule) {
	if rule.Fault == Delay {
		time.Sleep(rule.Delay)
	}
	srv, err := net.Dial("tcp", p.target)
	if err != nil {
		return // target down: the client sees the connection close
	}
	defer srv.Close()
	if !p.track(srv) {
		return
	}
	defer p.untrack(srv)

	switch rule.Fault {
	case None, Delay:
		done := make(chan struct{}, 2)
		go func() { io.Copy(srv, cli); srv.Close(); done <- struct{}{} }()
		go func() { io.Copy(cli, srv); cli.Close(); done <- struct{}{} }()
		<-done
		<-done
	case TruncateUpstream:
		// Forward only the allowance; the deferred closes deliver the
		// tear to both sides. Nothing flows downstream: the request
		// never completed, so any reply would be an artifact.
		io.CopyN(srv, cli, int64(rule.TruncateAfter))
	case BlackholeDown:
		go func() { io.Copy(io.Discard, srv) }() // apply, then eat the ack
		io.Copy(srv, cli)                        // until the client gives up
	case ResetAfterReply:
		go func() { io.Copy(srv, cli) }()
		var b [1]byte
		srv.Read(b[:]) // the upstream replied: it has processed the request
		// Fall through to the deferred closes without delivering it.
	}
}
