package faultnet

// Unit tests drive each fault against a tiny request/reply server and
// assert the exact failure the client and server each observe — the
// contracts the chaos suite in internal/netserver builds on.

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and answers every 4-byte request with
// "ack:" + request. It records each fully-read request.
type echoServer struct {
	ln net.Listener

	mu       sync.Mutex
	requests [][]byte
	partial  [][]byte // reads that ended before a full request
}

func newEchoServer(t *testing.T) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(c)
		}
	}()
	return s
}

func (s *echoServer) serve(c net.Conn) {
	defer c.Close()
	for {
		req := make([]byte, 4)
		n, err := io.ReadFull(c, req)
		if err != nil {
			if n > 0 {
				s.mu.Lock()
				s.partial = append(s.partial, req[:n])
				s.mu.Unlock()
			}
			return
		}
		s.mu.Lock()
		s.requests = append(s.requests, req)
		s.mu.Unlock()
		if _, err := c.Write(append([]byte("ack:"), req...)); err != nil {
			return
		}
	}
}

func (s *echoServer) counts() (full, partial int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.requests), len(s.partial)
}

func newProxy(t *testing.T, target string, script Script) *Proxy {
	t.Helper()
	p, err := New(target, script)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes one request and reads the 8-byte reply.
func roundTrip(c net.Conn, req string) (string, error) {
	if _, err := c.Write([]byte(req)); err != nil {
		return "", err
	}
	c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	reply := make([]byte, 8)
	if _, err := io.ReadFull(c, reply); err != nil {
		return "", err
	}
	return string(reply), nil
}

func TestProxyForwardsUntouched(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String(), Script{})
	c := dial(t, p.Addr())
	for _, req := range []string{"aaaa", "bbbb"} {
		got, err := roundTrip(c, req)
		if err != nil || got != "ack:"+req {
			t.Fatalf("roundTrip(%q) = %q, %v", req, got, err)
		}
	}
	if p.Accepted() != 1 || p.Faulted() != 0 {
		t.Fatalf("accepted=%d faulted=%d, want 1/0", p.Accepted(), p.Faulted())
	}
}

func TestDropConnThenRecover(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String(), Script{Plan: []Rule{{Fault: DropConn}}})
	c := dial(t, p.Addr())
	if _, err := roundTrip(c, "aaaa"); err == nil {
		t.Fatal("round trip through a dropped connection succeeded")
	}
	if full, _ := srv.counts(); full != 0 {
		t.Fatalf("server saw %d requests through a dropped connection", full)
	}
	// The next connection runs the Default rule: clean.
	c2 := dial(t, p.Addr())
	if got, err := roundTrip(c2, "bbbb"); err != nil || got != "ack:bbbb" {
		t.Fatalf("retry connection = %q, %v", got, err)
	}
	if p.Faulted() != 1 {
		t.Fatalf("faulted = %d, want 1", p.Faulted())
	}
}

func TestDelayForwardsLate(t *testing.T) {
	srv := newEchoServer(t)
	const pause = 60 * time.Millisecond
	p := newProxy(t, srv.ln.Addr().String(), Script{Default: Rule{Fault: Delay, Delay: pause}})
	start := time.Now()
	c := dial(t, p.Addr())
	got, err := roundTrip(c, "aaaa")
	if err != nil || got != "ack:aaaa" {
		t.Fatalf("delayed round trip = %q, %v", got, err)
	}
	if elapsed := time.Since(start); elapsed < pause {
		t.Fatalf("round trip finished in %v, want at least the %v pause", elapsed, pause)
	}
}

func TestTruncateTearsMidRequest(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String(),
		Script{Plan: []Rule{{Fault: TruncateUpstream, TruncateAfter: 2}}})
	c := dial(t, p.Addr())
	if _, err := roundTrip(c, "aaaa"); err == nil {
		t.Fatal("round trip through a truncated connection succeeded")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		full, partial := srv.counts()
		if full == 0 && partial == 1 {
			break // the server saw a torn request and nothing applied
		}
		if time.Now().After(deadline) {
			t.Fatalf("server saw %d full, %d partial requests; want 0 full, 1 partial", full, partial)
		}
		time.Sleep(time.Millisecond)
	}
	s := srv
	s.mu.Lock()
	tear := append([]byte(nil), s.partial[0]...)
	s.mu.Unlock()
	if !bytes.Equal(tear, []byte("aa")) {
		t.Fatalf("server received %q before the tear, want the 2-byte allowance", tear)
	}
}

// TestBlackholeAppliesWithoutAck is the exactly-once crux: the server
// fully processes the request, but the client never learns it.
func TestBlackholeAppliesWithoutAck(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String(), Script{Plan: []Rule{{Fault: BlackholeDown}}})
	c := dial(t, p.Addr())
	if _, err := roundTrip(c, "aaaa"); err == nil {
		t.Fatal("round trip through an ack black-hole succeeded")
	}
	if full, _ := srv.counts(); full != 1 {
		t.Fatalf("server applied %d requests, want exactly 1 (applied, unconfirmed)", full)
	}
}

// TestResetAfterReply severs the connection only once the server has
// replied — applied and acknowledged, but the ack dies on the wire.
func TestResetAfterReply(t *testing.T) {
	srv := newEchoServer(t)
	p := newProxy(t, srv.ln.Addr().String(), Script{Plan: []Rule{{Fault: ResetAfterReply}}})
	c := dial(t, p.Addr())
	if _, err := roundTrip(c, "aaaa"); err == nil {
		t.Fatal("round trip through a reset-after-reply connection succeeded")
	}
	if full, _ := srv.counts(); full != 1 {
		t.Fatalf("server applied %d requests, want exactly 1", full)
	}
}
