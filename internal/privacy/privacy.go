// Package privacy implements the longitudinal privacy accounting of the
// paper: Definition 3.2 ("ε-LDP on the users' values") measures the total
// budget consumed once every distinct memoized unit of a user's sequence has
// been sanitized. Each protocol charges ε∞ per *new* memoized unit — a
// distinct raw value for RAPPOR/L-OSUE/L-GRR, a distinct hash cell for
// LOLOHA, a distinct sampled-bucket state for dBitFlipPM — so the ledger is
// a set of units with a worst-case cap (k, g, or min(d+1, b)).
package privacy

import (
	"fmt"
	"math"
)

// Ledger tracks the longitudinal privacy loss ε̌ of a single user under
// Definition 3.2. Charge it with the memoized unit consumed at each report;
// it bills epsPerUnit for units not seen before, up to maxUnits (the
// protocol's worst case), after which the loss is capped: by sequential
// composition (Prop. 2.3) a mechanism that can only memoize maxUnits
// distinct outputs cannot leak more than maxUnits·ε∞.
type Ledger struct {
	epsPerUnit float64
	maxUnits   int
	seen       map[int]struct{}
}

// NewLedger returns a fresh ledger charging epsPerUnit per distinct unit
// with worst case maxUnits units. It panics on non-positive arguments
// (caller bug, not data).
func NewLedger(epsPerUnit float64, maxUnits int) *Ledger {
	if epsPerUnit <= 0 {
		panic(fmt.Sprintf("privacy: epsPerUnit must be positive, got %v", epsPerUnit))
	}
	if maxUnits <= 0 {
		panic(fmt.Sprintf("privacy: maxUnits must be positive, got %d", maxUnits))
	}
	return &Ledger{
		epsPerUnit: epsPerUnit,
		maxUnits:   maxUnits,
		seen:       make(map[int]struct{}),
	}
}

// Charge records that the report consumed the memoized unit. New units bill
// epsPerUnit; repeated units are free (memoization reuses the response).
func (l *Ledger) Charge(unit int) {
	l.seen[unit] = struct{}{}
}

// Units returns the number of distinct units charged so far.
func (l *Ledger) Units() int { return len(l.seen) }

// Spent returns the longitudinal privacy loss ε̌ accumulated so far:
// min(distinct units, maxUnits) · epsPerUnit.
func (l *Ledger) Spent() float64 {
	u := len(l.seen)
	if u > l.maxUnits {
		u = l.maxUnits
	}
	return float64(u) * l.epsPerUnit
}

// Cap returns the worst-case loss maxUnits · epsPerUnit (the Table 1
// "privacy budget consumption" column).
func (l *Ledger) Cap() float64 { return float64(l.maxUnits) * l.epsPerUnit }

// SequentialComposition returns the privacy level of releasing the outputs
// of all the given mechanisms on the same input (Prop. 2.3).
func SequentialComposition(eps ...float64) float64 {
	total := 0.0
	for _, e := range eps {
		total += e
	}
	return total
}

// ---------------------------------------------------------------------------
// Theorem 3.1: LDP cannot be satisfied when τ → ∞.

// MinimalUtilityLeak models Theorem 3.1: if every per-step mechanism is NOT
// α-LDP (i.e. retains at least α of distinguishing power, the "minimal
// utility" assumption) then after τ steps the sequence mechanism cannot be
// ε-LDP for any ε < τ·α. It returns that lower bound τ·α.
func MinimalUtilityLeak(alpha float64, tau int) float64 {
	return alpha * float64(tau)
}

// BreaksLDP reports whether a longitudinal mechanism with per-step leakage
// at least alpha over tau steps violates a claimed ε-LDP guarantee
// (the condition τ ≥ ε/α of Theorem 3.1).
func BreaksLDP(alpha, eps float64, tau int) bool {
	return float64(tau) >= eps/alpha
}

// RatioTracker accumulates the worst-case posterior likelihood ratio of the
// inductive argument in the proof of Theorem 3.1: each step multiplies the
// ratio by at least e^α, so after t steps the log-ratio is ≥ t·α. It gives
// experiments a concrete object that demonstrates the impossibility result.
type RatioTracker struct {
	logRatio float64
}

// Observe folds one step's per-report likelihood ratio (≥ 1) into the
// tracker. It panics on ratios below 1; the proof normalizes each step so
// that the maximizing/minimizing inputs are chosen per step.
func (rt *RatioTracker) Observe(ratio float64) {
	if ratio < 1 {
		panic(fmt.Sprintf("privacy: step ratio %v < 1; pass max/min normalized ratios", ratio))
	}
	rt.logRatio += math.Log(ratio)
}

// LogRatio returns the accumulated worst-case log likelihood ratio, i.e.
// the effective ε distinguishing the two extreme input sequences.
func (rt *RatioTracker) LogRatio() float64 { return rt.logRatio }

// ---------------------------------------------------------------------------
// Single-report guarantees (Theorems 3.3 and 3.4).

// GRRMaxRatio returns the worst-case output likelihood ratio of a GRR
// randomizer with keep probability p over domain size g: p/q with
// q = (1−p)/(g−1). Theorem 3.3 instantiates it at p = e^ε∞/(e^ε∞+g−1),
// giving exactly e^ε∞.
func GRRMaxRatio(p float64, g int) float64 {
	q := (1 - p) / float64(g-1)
	return p / q
}

// ChainedGRRMaxRatioPaper is the two-round ratio used in the proof of
// Theorem 3.4: (e^ε∞·e^εIRR + 1)/(e^ε∞ + e^εIRR). With εIRR from
// Algorithm 1 this equals e^ε1.
func ChainedGRRMaxRatioPaper(epsInf, epsIRR float64) float64 {
	a, c := math.Exp(epsInf), math.Exp(epsIRR)
	return (a*c + 1) / (a + c)
}

// ChainedGRRMaxRatioExact is the exact two-round output ratio over domain
// size g, accounting for all g−1 wrong memoized cells:
//
//	(p1p2 + (g−1)q1q2) / (q1p2 + p1q2 + (g−2)q1q2).
//
// For g = 2 it coincides with ChainedGRRMaxRatioPaper; for g > 2 it is
// strictly smaller, i.e. the paper's calibration is (safely) conservative.
func ChainedGRRMaxRatioExact(epsInf, epsIRR float64, g int) float64 {
	gf := float64(g)
	a, c := math.Exp(epsInf), math.Exp(epsIRR)
	p1 := a / (a + gf - 1)
	q1 := 1 / (a + gf - 1)
	p2 := c / (c + gf - 1)
	q2 := 1 / (c + gf - 1)
	num := p1*p2 + (gf-1)*q1*q2
	den := q1*p2 + p1*q2 + (gf-2)*q1*q2
	return num / den
}
