package privacy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLedgerChargesDistinctUnits(t *testing.T) {
	l := NewLedger(0.5, 10)
	if l.Spent() != 0 {
		t.Fatal("fresh ledger spent != 0")
	}
	l.Charge(3)
	l.Charge(3)
	l.Charge(3)
	if got := l.Spent(); got != 0.5 {
		t.Errorf("one distinct unit: spent %v, want 0.5", got)
	}
	l.Charge(7)
	if got := l.Spent(); got != 1.0 {
		t.Errorf("two distinct units: spent %v, want 1.0", got)
	}
	if l.Units() != 2 {
		t.Errorf("Units = %d, want 2", l.Units())
	}
}

func TestLedgerCap(t *testing.T) {
	l := NewLedger(1.0, 3)
	for u := 0; u < 100; u++ {
		l.Charge(u)
	}
	if got := l.Spent(); got != 3.0 {
		t.Errorf("capped spend %v, want 3.0", got)
	}
	if got := l.Cap(); got != 3.0 {
		t.Errorf("Cap = %v, want 3.0", got)
	}
}

func TestLedgerMonotone(t *testing.T) {
	l := NewLedger(0.7, 1000)
	prev := 0.0
	units := []int{5, 5, 2, 9, 2, 5, 11, 11, 0}
	for _, u := range units {
		l.Charge(u)
		if s := l.Spent(); s < prev {
			t.Fatalf("Spent decreased: %v -> %v", prev, s)
		} else {
			prev = s
		}
	}
}

func TestLedgerQuickSpentEqualsDistinct(t *testing.T) {
	f := func(units []uint8) bool {
		l := NewLedger(0.25, 1<<20)
		distinct := make(map[int]bool)
		for _, u := range units {
			l.Charge(int(u))
			distinct[int(u)] = true
		}
		return math.Abs(l.Spent()-0.25*float64(len(distinct))) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLedgerPanicsOnBadConstruction(t *testing.T) {
	for _, c := range []struct {
		eps   float64
		units int
	}{{0, 5}, {-1, 5}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLedger(%v,%d) did not panic", c.eps, c.units)
				}
			}()
			NewLedger(c.eps, c.units)
		}()
	}
}

func TestSequentialComposition(t *testing.T) {
	if got := SequentialComposition(0.5, 1.0, 0.25); got != 1.75 {
		t.Errorf("composition = %v, want 1.75", got)
	}
	if got := SequentialComposition(); got != 0 {
		t.Errorf("empty composition = %v, want 0", got)
	}
}

func TestTheorem31Bound(t *testing.T) {
	// With per-step leakage α = 0.1, after τ = 100 steps the sequence
	// cannot be ε-LDP for any ε ≤ 10.
	if got := MinimalUtilityLeak(0.1, 100); math.Abs(got-10) > 1e-12 {
		t.Errorf("leak = %v, want 10", got)
	}
	if !BreaksLDP(0.1, 5, 100) {
		t.Error("τ=100 α=0.1 should break ε=5 LDP (τ ≥ ε/α)")
	}
	if BreaksLDP(0.1, 11, 100) {
		t.Error("τ=100 α=0.1 should not yet break ε=11 LDP")
	}
	if !BreaksLDP(0.1, 10, 100) {
		t.Error("boundary τ = ε/α counts as broken per Theorem 3.1")
	}
}

func TestRatioTrackerAccumulates(t *testing.T) {
	var rt RatioTracker
	for i := 0; i < 50; i++ {
		rt.Observe(math.E) // each step leaks exactly 1 nat
	}
	if got := rt.LogRatio(); math.Abs(got-50) > 1e-9 {
		t.Errorf("logRatio = %v, want 50", got)
	}
}

func TestRatioTrackerRejectsSubUnit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ratio < 1 did not panic")
		}
	}()
	var rt RatioTracker
	rt.Observe(0.5)
}

func TestRatioTrackerMatchesTheorem31(t *testing.T) {
	// The inductive construction: per-step ratio ≥ e^α ⇒ after τ steps the
	// mechanism distinguishes two sequences at e^{τα}, hence it is not
	// ε-LDP whenever τα > ε — exactly BreaksLDP.
	const alpha, tau = 0.2, 60
	var rt RatioTracker
	for i := 0; i < tau; i++ {
		rt.Observe(math.Exp(alpha))
	}
	eps := rt.LogRatio() - 0.5
	if !BreaksLDP(alpha, eps, tau) {
		t.Error("tracker and BreaksLDP disagree")
	}
}

func TestGRRMaxRatio(t *testing.T) {
	// Theorem 3.3 instantiation: p = e^ε/(e^ε+g−1) gives ratio e^ε.
	for _, eps := range []float64{0.5, 1, 3} {
		for _, g := range []int{2, 4, 16} {
			p := math.Exp(eps) / (math.Exp(eps) + float64(g) - 1)
			if got := GRRMaxRatio(p, g); math.Abs(got-math.Exp(eps)) > 1e-9 {
				t.Errorf("GRRMaxRatio(eps=%v,g=%d) = %v, want e^eps = %v",
					eps, g, got, math.Exp(eps))
			}
		}
	}
}

func TestChainedRatioTheorem34Identity(t *testing.T) {
	// With εIRR = ln((e^{ε∞+ε1}−1)/(e^{ε∞}−e^{ε1})), the paper ratio
	// (e^ε∞·e^εIRR + 1)/(e^ε∞ + e^εIRR) must equal e^ε1 exactly.
	for _, epsInf := range []float64{0.5, 1, 2, 5} {
		for _, alpha := range []float64{0.1, 0.3, 0.6} {
			eps1 := alpha * epsInf
			epsIRR := math.Log((math.Exp(epsInf+eps1) - 1) / (math.Exp(epsInf) - math.Exp(eps1)))
			got := ChainedGRRMaxRatioPaper(epsInf, epsIRR)
			if math.Abs(got-math.Exp(eps1)) > 1e-9 {
				t.Errorf("eps∞=%v α=%v: paper ratio %v, want e^ε1 = %v",
					epsInf, alpha, got, math.Exp(eps1))
			}
		}
	}
}

func TestChainedRatioExactMatchesPaperAtG2(t *testing.T) {
	for _, epsInf := range []float64{0.5, 2, 5} {
		epsIRR := 0.8 * epsInf
		paper := ChainedGRRMaxRatioPaper(epsInf, epsIRR)
		exact := ChainedGRRMaxRatioExact(epsInf, epsIRR, 2)
		if math.Abs(paper-exact) > 1e-9 {
			t.Errorf("g=2: exact %v != paper %v", exact, paper)
		}
	}
}

func TestChainedRatioExactConservativeForLargerG(t *testing.T) {
	// DESIGN.md "known discrepancies": for g > 2 the true output ratio is
	// strictly below the paper's bound, so calibrating with the paper's
	// formula yields a protocol that is at least ε1-LDP.
	for _, g := range []int{3, 5, 16} {
		for _, epsInf := range []float64{1.0, 3.0} {
			epsIRR := 0.7 * epsInf
			paper := ChainedGRRMaxRatioPaper(epsInf, epsIRR)
			exact := ChainedGRRMaxRatioExact(epsInf, epsIRR, g)
			if exact >= paper {
				t.Errorf("g=%d eps∞=%v: exact ratio %v not below paper bound %v",
					g, epsInf, exact, paper)
			}
		}
	}
}
