// Package domain provides codecs between application-level values and the
// dense integer indices [0..k) that every LDP protocol in this repository
// operates on, plus the equal-width bucketizer that dBitFlipPM uses to
// generalize a large ordinal domain into b buckets.
package domain

import (
	"fmt"
	"sort"
)

// Codec maps application values of type string onto indices [0..k) and back.
// The mapping is fixed at construction: LDP frequency oracles require the
// server and every client to agree on the domain up front.
type Codec struct {
	values []string
	index  map[string]int
}

// NewCodec builds a codec over the given distinct values. The index of a
// value is its position in the slice. It returns an error if values is empty
// or contains duplicates.
func NewCodec(values []string) (*Codec, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("domain: empty value set")
	}
	idx := make(map[string]int, len(values))
	for i, v := range values {
		if _, dup := idx[v]; dup {
			return nil, fmt.Errorf("domain: duplicate value %q", v)
		}
		idx[v] = i
	}
	return &Codec{values: append([]string(nil), values...), index: idx}, nil
}

// Size returns k, the number of values in the domain.
func (c *Codec) Size() int { return len(c.values) }

// Index returns the dense index of v, or an error if v is outside the domain.
func (c *Codec) Index(v string) (int, error) {
	i, ok := c.index[v]
	if !ok {
		return 0, fmt.Errorf("domain: value %q not in domain", v)
	}
	return i, nil
}

// Value returns the value at index i. It panics if i is out of range, as
// indices only originate from this codec.
func (c *Codec) Value(i int) string { return c.values[i] }

// Values returns a copy of the domain in index order.
func (c *Codec) Values() []string { return append([]string(nil), c.values...) }

// ---------------------------------------------------------------------------
// Bucketizer (dBitFlipPM substrate)

// Bucketizer partitions the ordinal domain [0..k) into b buckets of equal
// width, "such that close values will fall into the same bucket"
// (paper §2.4.4). Bucket(v) = floor(v·b/k), which yields widths that differ
// by at most one when b does not divide k.
type Bucketizer struct {
	k, b int
}

// NewBucketizer returns a bucketizer from [0..k) onto [0..b). It returns an
// error unless 2 <= b <= k.
func NewBucketizer(k, b int) (Bucketizer, error) {
	if k < 2 {
		return Bucketizer{}, fmt.Errorf("domain: bucketizer needs k >= 2, got %d", k)
	}
	if b < 2 || b > k {
		return Bucketizer{}, fmt.Errorf("domain: bucketizer needs 2 <= b <= k, got b=%d k=%d", b, k)
	}
	return Bucketizer{k: k, b: b}, nil
}

// K returns the size of the original domain.
func (z Bucketizer) K() int { return z.k }

// B returns the number of buckets.
func (z Bucketizer) B() int { return z.b }

// Bucket maps a value in [0..k) to its bucket in [0..b). It panics on
// out-of-range input.
func (z Bucketizer) Bucket(v int) int {
	if v < 0 || v >= z.k {
		panic(fmt.Sprintf("domain: value %d outside [0,%d)", v, z.k))
	}
	return v * z.b / z.k
}

// BucketWidth returns the number of original values that map to bucket j.
func (z Bucketizer) BucketWidth(j int) int {
	if j < 0 || j >= z.b {
		panic(fmt.Sprintf("domain: bucket %d outside [0,%d)", j, z.b))
	}
	lo := ceilDiv(j*z.k, z.b)
	hi := ceilDiv((j+1)*z.k, z.b)
	return hi - lo
}

// FoldFrequencies folds a k-bin histogram into the b-bin bucket histogram:
// the ground truth against which dBitFlipPM estimates are scored.
func (z Bucketizer) FoldFrequencies(freq []float64) []float64 {
	if len(freq) != z.k {
		panic(fmt.Sprintf("domain: histogram has %d bins, want %d", len(freq), z.k))
	}
	out := make([]float64, z.b)
	for v, f := range freq {
		out[z.Bucket(v)] += f
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ---------------------------------------------------------------------------
// Histogram helpers shared by estimators and metrics.

// TrueFrequencies computes the k-bin normalized histogram of values, each in
// [0..k). It panics on out-of-range values.
func TrueFrequencies(values []int, k int) []float64 {
	freq := make([]float64, k)
	if len(values) == 0 {
		return freq
	}
	w := 1.0 / float64(len(values))
	for _, v := range values {
		if v < 0 || v >= k {
			panic(fmt.Sprintf("domain: value %d outside [0,%d)", v, k))
		}
		freq[v] += w
	}
	return freq
}

// TopIndices returns the indices of the m largest entries of freq in
// descending order (ties broken by lower index first).
func TopIndices(freq []float64, m int) []int {
	idx := make([]int, len(freq))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return freq[idx[a]] > freq[idx[b]] })
	if m > len(idx) {
		m = len(idx)
	}
	return idx[:m]
}
