package domain

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	c, err := NewCodec([]string{"news.com", "mail.com", "search.com"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Fatalf("Size = %d, want 3", c.Size())
	}
	for i, v := range []string{"news.com", "mail.com", "search.com"} {
		got, err := c.Index(v)
		if err != nil {
			t.Fatal(err)
		}
		if got != i {
			t.Errorf("Index(%q) = %d, want %d", v, got, i)
		}
		if c.Value(i) != v {
			t.Errorf("Value(%d) = %q, want %q", i, c.Value(i), v)
		}
	}
}

func TestCodecRejectsBadInput(t *testing.T) {
	if _, err := NewCodec(nil); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewCodec([]string{"a", "b", "a"}); err == nil {
		t.Error("duplicate values accepted")
	}
	c, _ := NewCodec([]string{"a"})
	if _, err := c.Index("z"); err == nil {
		t.Error("unknown value accepted")
	}
}

func TestCodecValuesIsCopy(t *testing.T) {
	c, _ := NewCodec([]string{"a", "b"})
	vs := c.Values()
	vs[0] = "mutated"
	if c.Value(0) != "a" {
		t.Error("Values() exposed internal slice")
	}
}

func TestBucketizerEqualWidth(t *testing.T) {
	z, err := NewBucketizer(360, 90)
	if err != nil {
		t.Fatal(err)
	}
	// k divisible by b: all widths equal, buckets contiguous and monotone.
	for j := 0; j < 90; j++ {
		if w := z.BucketWidth(j); w != 4 {
			t.Fatalf("BucketWidth(%d) = %d, want 4", j, w)
		}
	}
	prev := 0
	for v := 0; v < 360; v++ {
		b := z.Bucket(v)
		if b < prev {
			t.Fatalf("Bucket not monotone at v=%d", v)
		}
		prev = b
	}
	if z.Bucket(0) != 0 || z.Bucket(359) != 89 {
		t.Error("bucket range endpoints wrong")
	}
}

func TestBucketizerUnevenWidths(t *testing.T) {
	z, err := NewBucketizer(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for j := 0; j < 3; j++ {
		w := z.BucketWidth(j)
		if w < 3 || w > 4 {
			t.Errorf("BucketWidth(%d) = %d, want 3 or 4", j, w)
		}
		total += w
	}
	if total != 10 {
		t.Errorf("widths sum to %d, want 10", total)
	}
	// Width computed from the formula must match empirical counts.
	counts := make([]int, 3)
	for v := 0; v < 10; v++ {
		counts[z.Bucket(v)]++
	}
	for j := 0; j < 3; j++ {
		if counts[j] != z.BucketWidth(j) {
			t.Errorf("bucket %d: counted %d values, BucketWidth says %d", j, counts[j], z.BucketWidth(j))
		}
	}
}

func TestBucketizerPropertyWidthsConsistent(t *testing.T) {
	f := func(kRaw, bRaw uint16) bool {
		k := int(kRaw%500) + 2
		b := int(bRaw)%(k-1) + 2
		if b > k {
			return true
		}
		z, err := NewBucketizer(k, b)
		if err != nil {
			return false
		}
		counts := make([]int, b)
		for v := 0; v < k; v++ {
			counts[z.Bucket(v)]++
		}
		for j := 0; j < b; j++ {
			if counts[j] != z.BucketWidth(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBucketizerRejectsBadShape(t *testing.T) {
	cases := []struct{ k, b int }{{1, 2}, {10, 1}, {10, 11}, {10, 0}, {10, -3}}
	for _, c := range cases {
		if _, err := NewBucketizer(c.k, c.b); err == nil {
			t.Errorf("NewBucketizer(%d,%d) accepted", c.k, c.b)
		}
	}
}

func TestFoldFrequencies(t *testing.T) {
	z, _ := NewBucketizer(6, 3)
	freq := []float64{0.1, 0.2, 0.3, 0.1, 0.2, 0.1}
	folded := z.FoldFrequencies(freq)
	want := []float64{0.3, 0.4, 0.3}
	for j := range want {
		if math.Abs(folded[j]-want[j]) > 1e-12 {
			t.Errorf("folded[%d] = %v, want %v", j, folded[j], want[j])
		}
	}
	sum := 0.0
	for _, f := range folded {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("folded histogram sums to %v", sum)
	}
}

func TestTrueFrequencies(t *testing.T) {
	freq := TrueFrequencies([]int{0, 0, 1, 2, 2, 2}, 4)
	want := []float64{2.0 / 6, 1.0 / 6, 3.0 / 6, 0}
	for i := range want {
		if math.Abs(freq[i]-want[i]) > 1e-12 {
			t.Errorf("freq[%d] = %v, want %v", i, freq[i], want[i])
		}
	}
}

func TestTrueFrequenciesEmpty(t *testing.T) {
	freq := TrueFrequencies(nil, 3)
	for i, f := range freq {
		if f != 0 {
			t.Errorf("freq[%d] = %v, want 0", i, f)
		}
	}
}

func TestTrueFrequenciesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range value did not panic")
		}
	}()
	TrueFrequencies([]int{5}, 3)
}

func TestTopIndices(t *testing.T) {
	freq := []float64{0.1, 0.4, 0.2, 0.3}
	top := TopIndices(freq, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Errorf("TopIndices = %v, want [1 3]", top)
	}
	all := TopIndices(freq, 99)
	if len(all) != 4 {
		t.Errorf("TopIndices capped wrong: %v", all)
	}
}

func TestTopIndicesStableTies(t *testing.T) {
	freq := []float64{0.25, 0.25, 0.25, 0.25}
	top := TopIndices(freq, 4)
	for i, v := range top {
		if v != i {
			t.Errorf("tie order not stable: %v", top)
		}
	}
}
