package datasets

import (
	"math"
	"testing"
)

func TestSynPaperShape(t *testing.T) {
	d := Syn(SynConfig{Seed: 1})
	if d.K != 360 || d.N() != 10000 || d.Tau() != 120 {
		t.Fatalf("Syn shape k=%d n=%d tau=%d", d.K, d.N(), d.Tau())
	}
	// Change probability: redraw with p=0.25 but a redraw can land on the
	// same value, so the observed rate is pch·(1−1/k) ≈ 0.2493.
	want := 0.25 * (1 - 1.0/360)
	if got := d.ChangeRate(); math.Abs(got-want) > 0.005 {
		t.Errorf("change rate %v, want ~%v", got, want)
	}
}

func TestSynFirstRoundUniform(t *testing.T) {
	d := Syn(SynConfig{Seed: 2, N: 36000, Tau: 2})
	freq := d.TrueFrequencies(0)
	want := 1.0 / 360
	for v, f := range freq {
		if math.Abs(f-want) > 6*math.Sqrt(want/36000)+1e-4 {
			t.Errorf("syn t=0 freq[%d] = %v, want ~%v", v, f, want)
		}
	}
}

func TestSynValuesInRange(t *testing.T) {
	d := Syn(SynConfig{Seed: 3, N: 200, Tau: 30, K: 17})
	for tt := 0; tt < d.Tau(); tt++ {
		for u := 0; u < d.N(); u++ {
			if v := d.Value(u, tt); v < 0 || v >= 17 {
				t.Fatalf("value %d out of range", v)
			}
		}
	}
}

func TestSynDeterministicBySeed(t *testing.T) {
	a := Syn(SynConfig{Seed: 7, N: 100, Tau: 10})
	b := Syn(SynConfig{Seed: 7, N: 100, Tau: 10})
	c := Syn(SynConfig{Seed: 8, N: 100, Tau: 10})
	sameAB, sameAC := true, true
	for tt := 0; tt < 10; tt++ {
		for u := 0; u < 100; u++ {
			if a.Value(u, tt) != b.Value(u, tt) {
				sameAB = false
			}
			if a.Value(u, tt) != c.Value(u, tt) {
				sameAC = false
			}
		}
	}
	if !sameAB {
		t.Error("same seed produced different datasets")
	}
	if sameAC {
		t.Error("different seeds produced identical datasets")
	}
}

func TestAdultPaperShape(t *testing.T) {
	d := Adult(AdultConfig{Seed: 1})
	if d.K != 96 || d.N() != 45222 || d.Tau() != 260 {
		t.Fatalf("Adult shape k=%d n=%d tau=%d", d.K, d.N(), d.Tau())
	}
}

func TestAdultStaticMarginal(t *testing.T) {
	// The paper permutes the same multiset every round: the histogram must
	// be *identical* across rounds.
	d := Adult(AdultConfig{Seed: 2, N: 5000, Tau: 5})
	f0 := d.TrueFrequencies(0)
	for tt := 1; tt < d.Tau(); tt++ {
		ft := d.TrueFrequencies(tt)
		for v := range f0 {
			if math.Abs(f0[v]-ft[v]) > 1e-12 {
				t.Fatalf("round %d histogram differs at v=%d", tt, v)
			}
		}
	}
}

func TestAdultSkewPeaksAtFortyHours(t *testing.T) {
	d := Adult(AdultConfig{Seed: 3, N: 20000, Tau: 1})
	f := d.TrueFrequencies(0)
	// Index 39 is "40 hours"; it must dominate and carry roughly 40-50%.
	for v := range f {
		if v != 39 && f[v] >= f[39] {
			t.Fatalf("freq[%d]=%v >= freq[40h]=%v", v, f[v], f[39])
		}
	}
	if f[39] < 0.35 || f[39] > 0.55 {
		t.Errorf("40-hour share %v, want ~0.45", f[39])
	}
}

func TestAdultSequencesChurn(t *testing.T) {
	// Random permutation each round: users change value almost every round
	// (only collisions with identical values keep them fixed), which is
	// what makes k-linear protocols leak heavily on Adult.
	d := Adult(AdultConfig{Seed: 4, N: 3000, Tau: 10})
	if rate := d.ChangeRate(); rate < 0.5 {
		t.Errorf("adult change rate %v, want > 0.5", rate)
	}
}

func TestFolkShapes(t *testing.T) {
	mt := FolkMT(1)
	if mt.K != 1412 || mt.N() != 10336 || mt.Tau() != 80 {
		t.Fatalf("DB_MT shape k=%d n=%d tau=%d", mt.K, mt.N(), mt.Tau())
	}
	de := FolkDE(1)
	if de.K != 1234 || de.N() != 9123 || de.Tau() != 80 {
		t.Fatalf("DB_DE shape k=%d n=%d tau=%d", de.K, de.N(), de.Tau())
	}
}

func TestFolkFullDictionaryAtRoundZero(t *testing.T) {
	d := FolkDE(5)
	seen := make([]bool, d.K)
	for u := 0; u < d.N(); u++ {
		seen[d.Value(u, 0)] = true
	}
	missing := 0
	for _, ok := range seen {
		if !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d of %d dictionary values unused at t=0", missing, d.K)
	}
}

func TestFolkTemporalCorrelation(t *testing.T) {
	// Replicate-weight counters move often but locally: high change rate,
	// small average move.
	d, err := Folk(FolkConfig{Name: "x", K: 500, N: 2000, Tau: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rate := d.ChangeRate(); rate < 0.6 {
		t.Errorf("folk change rate %v, want > 0.6 (frequent small changes)", rate)
	}
	totalMove, moves := 0.0, 0
	for tt := 1; tt < d.Tau(); tt++ {
		for u := 0; u < d.N(); u++ {
			delta := d.Value(u, tt) - d.Value(u, tt-1)
			if delta != 0 {
				if delta < 0 {
					delta = -delta
				}
				totalMove += float64(delta)
				moves++
			}
		}
	}
	if avg := totalMove / float64(moves); avg > 15 {
		t.Errorf("average move %v domain steps, want small (bounded jitter)", avg)
	}
}

func TestFolkValidation(t *testing.T) {
	if _, err := Folk(FolkConfig{K: 10, N: 10}); err == nil {
		t.Error("missing name accepted")
	}
	if _, err := Folk(FolkConfig{Name: "x", K: 1, N: 10}); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		// Use small custom configs where possible? ByName builds paper
		// sizes; just check the two cheap ones and the error path.
		if name != "syn" {
			continue
		}
		d, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != name {
			t.Errorf("dataset name %q, want %q", d.Name, name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
	if len(Names()) != 4 {
		t.Errorf("Names() = %v, want 4 datasets", Names())
	}
}

func TestDistinctPerUser(t *testing.T) {
	d := &Dataset{Name: "tiny", K: 5, values: [][]int{
		{0, 1, 2},
		{0, 2, 2},
		{1, 3, 2},
	}}
	got := d.DistinctPerUser()
	want := []int{2, 3, 1}
	for u := range want {
		if got[u] != want[u] {
			t.Errorf("user %d distinct = %d, want %d", u, got[u], want[u])
		}
	}
}

func TestChangeRateHandComputed(t *testing.T) {
	d := &Dataset{Name: "tiny", K: 5, values: [][]int{
		{0, 1},
		{0, 2}, // 1 change of 2
		{1, 2}, // 1 change of 2
	}}
	if got := d.ChangeRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("change rate %v, want 0.5", got)
	}
}
