// Package datasets generates the four evaluation workloads of §5.1.
//
// Syn follows the paper exactly. Adult, DB_MT and DB_DE are synthetic
// surrogates for the UCI Adult and folktables data that this offline module
// cannot download; DESIGN.md documents what each surrogate preserves
// (domain size, cohort size, number of collections, marginal shape and the
// per-user temporal change structure that drives the longitudinal privacy
// results).
//
// A Dataset is a matrix of values: Value(u, t) is user u's private value at
// collection round t, an index in [0..K()).
package datasets

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/domain"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// Dataset is an evolving-data workload: n users, each holding one value of
// a k-sized domain at each of tau collection rounds.
type Dataset struct {
	Name string
	K    int
	// values[t][u] is user u's value at round t.
	values [][]int
}

// N returns the number of users.
func (d *Dataset) N() int {
	if len(d.values) == 0 {
		return 0
	}
	return len(d.values[0])
}

// Tau returns the number of collection rounds.
func (d *Dataset) Tau() int { return len(d.values) }

// Value returns user u's value at round t.
func (d *Dataset) Value(u, t int) int { return d.values[t][u] }

// Round returns the value slice of round t (not a copy; callers must not
// mutate it).
func (d *Dataset) Round(t int) []int { return d.values[t] }

// TrueFrequencies returns the k-bin histogram of round t.
func (d *Dataset) TrueFrequencies(t int) []float64 {
	return domain.TrueFrequencies(d.values[t], d.K)
}

// DistinctPerUser returns, for each user, the number of distinct values in
// their sequence — the quantity that drives the ε̌ of RAPPOR-class
// protocols (Fig. 4).
func (d *Dataset) DistinctPerUser() []int {
	n := d.N()
	out := make([]int, n)
	seen := make(map[int]struct{})
	for u := 0; u < n; u++ {
		for k := range seen {
			delete(seen, k)
		}
		for t := 0; t < d.Tau(); t++ {
			seen[d.values[t][u]] = struct{}{}
		}
		out[u] = len(seen)
	}
	return out
}

// ChangeRate returns the empirical per-round probability that a user's
// value differs from their previous one, averaged over users and rounds.
func (d *Dataset) ChangeRate() float64 {
	n, tau := d.N(), d.Tau()
	if tau < 2 {
		return 0
	}
	changes := 0
	for t := 1; t < tau; t++ {
		for u := 0; u < n; u++ {
			if d.values[t][u] != d.values[t-1][u] {
				changes++
			}
		}
	}
	return float64(changes) / float64(n*(tau-1))
}

// ---------------------------------------------------------------------------
// Syn (paper §5.1): k = 360, n = 10000, τ = 120. Uniform start; each round
// each user redraws uniformly with probability pch = 0.25.

// SynConfig parameterizes the synthetic workload; zero fields take the
// paper's values.
type SynConfig struct {
	K, N, Tau  int
	ChangeProb float64
	Seed       uint64
}

func (c *SynConfig) fill() {
	if c.K == 0 {
		c.K = 360
	}
	if c.N == 0 {
		c.N = 10000
	}
	if c.Tau == 0 {
		c.Tau = 120
	}
	if c.ChangeProb == 0 {
		c.ChangeProb = 0.25
	}
}

// Syn generates the synthetic telemetry workload.
func Syn(cfg SynConfig) *Dataset {
	cfg.fill()
	r := randsrc.NewSeeded(randsrc.Derive(cfg.Seed, 0x517))
	values := make([][]int, cfg.Tau)
	first := make([]int, cfg.N)
	for u := range first {
		first[u] = r.Intn(cfg.K)
	}
	values[0] = first
	for t := 1; t < cfg.Tau; t++ {
		row := make([]int, cfg.N)
		prev := values[t-1]
		for u := range row {
			if r.Bernoulli(cfg.ChangeProb) {
				row[u] = r.Intn(cfg.K)
			} else {
				row[u] = prev[u]
			}
		}
		values[t] = row
	}
	return &Dataset{Name: "syn", K: cfg.K, values: values}
}

// ---------------------------------------------------------------------------
// Adult surrogate (paper §5.1): "hours-per-week", k = 96, n = 45222,
// τ = 260; the same multiset of values is randomly re-assigned to users
// every round, so the global histogram is static while individual
// sequences churn.

// AdultConfig parameterizes the Adult surrogate.
type AdultConfig struct {
	N, Tau int
	Seed   uint64
}

func (c *AdultConfig) fill() {
	if c.N == 0 {
		c.N = 45222
	}
	if c.Tau == 0 {
		c.Tau = 260
	}
}

// adultHoursWeights approximates the UCI Adult "hours-per-week" marginal:
// a dominant spike at 40 hours, secondary spikes at common full/part-time
// loads, and a thin spread elsewhere. Index i is "i+1 hours" (domain 1..96
// mapped to [0..96)).
func adultHoursWeights() []float64 {
	w := make([]float64, 96)
	for i := range w {
		w[i] = 0.05 // thin background
	}
	spikes := map[int]float64{
		40: 46.6, 50: 8.6, 45: 5.4, 60: 4.4, 35: 3.9, 20: 3.1,
		30: 2.4, 55: 1.5, 25: 1.4, 48: 1.2, 38: 1.1, 15: 0.8,
		70: 0.6, 65: 0.5, 10: 0.6, 80: 0.4, 44: 0.4, 36: 0.4,
		42: 0.4, 32: 0.4, 24: 0.3, 16: 0.3, 8: 0.3, 12: 0.3,
	}
	for hours, pct := range spikes {
		w[hours-1] = pct
	}
	return w
}

// Adult generates the Adult surrogate workload.
func Adult(cfg AdultConfig) *Dataset {
	cfg.fill()
	r := randsrc.NewSeeded(randsrc.Derive(cfg.Seed, 0xAD17))
	base := drawCategorical(adultHoursWeights(), cfg.N, r)
	values := make([][]int, cfg.Tau)
	values[0] = base
	for t := 1; t < cfg.Tau; t++ {
		row := make([]int, cfg.N)
		copy(row, values[t-1])
		r.Shuffle(row) // re-permute holders; global histogram unchanged
		values[t] = row
	}
	return &Dataset{Name: "adult", K: 96, values: values}
}

// ---------------------------------------------------------------------------
// folktables surrogates (paper §5.1): per-person replicate weights
// PWGTP1..80 — τ = 80 counter collections with temporally correlated,
// frequently but mildly changing values over a large heavy-tailed domain.
// DB_MT: k = 1412, n = 10336. DB_DE: k = 1234, n = 9123.

// FolkConfig parameterizes a folktables surrogate.
type FolkConfig struct {
	Name   string
	K      int
	N, Tau int
	Seed   uint64
	// JitterProb is the per-round probability that a user's counter moves.
	JitterProb float64
	// JitterSpan is the maximum absolute move (in domain steps).
	JitterSpan int
}

func (c *FolkConfig) fill() error {
	if c.Name == "" {
		return fmt.Errorf("datasets: folk surrogate needs a name")
	}
	if c.K < 2 || c.N < 1 {
		return fmt.Errorf("datasets: folk surrogate needs k >= 2 and n >= 1, got k=%d n=%d", c.K, c.N)
	}
	if c.Tau == 0 {
		c.Tau = 80
	}
	if c.JitterProb == 0 {
		c.JitterProb = 0.85
	}
	if c.JitterSpan == 0 {
		c.JitterSpan = 12
	}
	return nil
}

// Folk generates a folktables-style replicate-weight workload: each user
// starts at a heavy-tailed base position in [0..k) and performs a bounded
// random walk. Every domain index is touched at least once so the
// dictionary size is exactly k, matching the paper's "total number of
// unique values" accounting.
func Folk(cfg FolkConfig) (*Dataset, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := randsrc.NewSeeded(randsrc.Derive(cfg.Seed, 0xF01C))
	base := make([]int, cfg.N)
	for u := range base {
		base[u] = heavyTailedIndex(cfg.K, r)
	}
	// Guarantee full dictionary coverage: assign a random permutation of
	// the whole domain to the first k users at t = 0. With n ≥ k (true for
	// both datasets) every value occurs, so the dictionary size is exactly
	// k as the paper counts it.
	perm := make([]int, cfg.K)
	r.Perm(perm)
	for i := 0; i < cfg.K && i < cfg.N; i++ {
		base[i] = perm[i]
	}

	values := make([][]int, cfg.Tau)
	values[0] = base
	for t := 1; t < cfg.Tau; t++ {
		row := make([]int, cfg.N)
		prev := values[t-1]
		for u := range row {
			v := prev[u]
			if r.Bernoulli(cfg.JitterProb) {
				step := r.Intn(2*cfg.JitterSpan+1) - cfg.JitterSpan
				v += step
				if v < 0 {
					v = 0
				}
				if v >= cfg.K {
					v = cfg.K - 1
				}
			}
			row[u] = v
		}
		values[t] = row
	}
	return &Dataset{Name: cfg.Name, K: cfg.K, values: values}, nil
}

// FolkMT generates the DB_MT (Montana) surrogate: k=1412, n=10336, τ=80.
func FolkMT(seed uint64) *Dataset {
	d, err := Folk(FolkConfig{Name: "db_mt", K: 1412, N: 10336, Seed: seed})
	if err != nil {
		panic(err) // constants are valid by construction
	}
	return d
}

// FolkDE generates the DB_DE (Delaware) surrogate: k=1234, n=9123, τ=80.
func FolkDE(seed uint64) *Dataset {
	d, err := Folk(FolkConfig{Name: "db_de", K: 1234, N: 9123, Seed: seed})
	if err != nil {
		panic(err)
	}
	return d
}

// ---------------------------------------------------------------------------
// Registry used by the CLI and the simulation harness.

// ByName builds one of the four paper datasets by its §5.1 name.
func ByName(name string, seed uint64) (*Dataset, error) {
	switch name {
	case "syn":
		return Syn(SynConfig{Seed: seed}), nil
	case "adult":
		return Adult(AdultConfig{Seed: seed}), nil
	case "db_mt":
		return FolkMT(seed), nil
	case "db_de":
		return FolkDE(seed), nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q (want syn, adult, db_mt or db_de)", name)
	}
}

// Names lists the four paper datasets in presentation order.
func Names() []string { return []string{"syn", "adult", "db_mt", "db_de"} }

// ---------------------------------------------------------------------------
// helpers

// drawCategorical draws n samples from the (unnormalized) weight vector.
func drawCategorical(weights []float64, n int, r *randsrc.Rand) []int {
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		cdf[i] = total
	}
	out := make([]int, n)
	for i := range out {
		u := r.Float64() * total
		// Binary search for the first cdf entry >= u.
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = lo
	}
	return out
}

// heavyTailedIndex draws an index in [0..k) whose density decays like a
// power law over the domain (replicate weights are heavy-tailed counters).
func heavyTailedIndex(k int, r *randsrc.Rand) int {
	// v = k·u³: P(v < z) = (z/k)^{1/3}, so small counters dominate.
	u := r.Float64()
	v := int(float64(k) * u * u * u)
	if v >= k {
		v = k - 1
	}
	return v
}
