package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("proto", "eps", "mse")
	tbl.AddRow("RAPPOR", 0.5, 0.00123)
	tbl.AddRow("BiLOLOHA", 5.0, 1.5e-7)
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "proto") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule line %q", lines[1])
	}
	if !strings.Contains(lines[2], "RAPPOR") || !strings.Contains(lines[2], "0.0012") {
		t.Errorf("row line %q", lines[2])
	}
	if !strings.Contains(lines[3], "1.500e-07") {
		t.Errorf("scientific formatting missing: %q", lines[3])
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tbl := NewTable("a", "bbbbbb")
	tbl.AddRow("xxxxxxxxxx", "y")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	// Column 2 must start at the same offset in every line.
	idx := strings.Index(lines[2], "y")
	if strings.Index(lines[0], "bbbbbb") != idx {
		t.Errorf("columns misaligned:\n%s", b.String())
	}
}

func TestTableColumnsAlignedMultibyteRunes(t *testing.T) {
	// Regression: widths were computed from byte length, so a sparkline
	// cell (3 bytes per rune) padded the column 2–3× too wide and every
	// column after it drifted.
	tbl := NewTable("trend", "mse")
	tbl.AddRow("▁▂▃▄", "0.25")
	tbl.AddRow("ascii", "1.5")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	want := strings.IndexRune(lines[3], '1') // "1.5" offset in the ascii row
	for i, probe := range map[int]string{0: "mse", 2: "0.25"} {
		got := strings.Index(lines[i], probe)
		if runeOffset(lines[i], got) != runeOffset(lines[3], want) {
			t.Errorf("column 2 misaligned on line %d:\n%s", i, b.String())
		}
	}
}

// runeOffset converts a byte offset into a rune (display column) offset.
func runeOffset(s string, byteIdx int) int {
	return len([]rune(s[:byteIdx]))
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.5, "0.5000"},
		{12.3456, "12.346"},
		{1e-9, "1.000e-09"},
		{2.5e7, "2.500e+07"},
		{math.NaN(), "NaN"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b,
		[]string{"name", "value"},
		[][]string{{"plain", "1"}, {"with,comma", `with"quote`}})
	if err != nil {
		t.Fatal(err)
	}
	want := "name,value\nplain,1\n\"with,comma\",\"with\"\"quote\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVQuotesCarriageReturn(t *testing.T) {
	// RFC 4180: a bare \r inside a cell must be quoted like \n, or readers
	// see a broken record boundary.
	var b strings.Builder
	err := WriteCSV(&b,
		[]string{"name"},
		[][]string{{"line1\rline2"}, {"line1\nline2"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "name\n\"line1\rline2\"\n\"line1\nline2\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if got := len([]rune(s)); got != 4 {
		t.Fatalf("sparkline length %d, want 4", got)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline endpoints wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render low bars: %q", flat)
		}
	}
	withNaN := []rune(Sparkline([]float64{0, math.NaN(), 1}))
	if withNaN[1] != ' ' {
		t.Errorf("NaN should render as space: %q", string(withNaN))
	}
}

func TestHistogram(t *testing.T) {
	var b strings.Builder
	err := Histogram(&b, []float64{0.5, 0.25, 0}, []string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "########") {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "####") || strings.Contains(lines[1], "#####") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if strings.Contains(lines[2], "#") {
		t.Errorf("zero bar should be empty: %q", lines[2])
	}
}
