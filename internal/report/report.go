// Package report renders experiment results as ASCII tables, CSV files and
// terminal sparklines. The lolohasim CLI and EXPERIMENTS.md are produced
// through it.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned ASCII table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = cellWidth(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if cw := cellWidth(cell); i < len(widths) && cw > widths[i] {
				widths[i] = cw
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// cellWidth is a cell's display width in columns. Byte length over-counts
// multi-byte runes (sparklines, unicode labels), which used to misalign
// every column to their right; rune count renders those correctly on
// monospace terminals.
func cellWidth(s string) int { return utf8.RuneCountInString(s) }

func pad(s string, w int) string {
	if n := cellWidth(s); n < w {
		return s + strings.Repeat(" ", w-n)
	}
	return s
}

// FormatFloat renders a float compactly: scientific for very small/large
// magnitudes, fixed otherwise.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v != v: // NaN
		return "NaN"
	case abs(v) < 1e-3 || abs(v) >= 1e6:
		return fmt.Sprintf("%.3e", v)
	case abs(v) < 1:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ---------------------------------------------------------------------------
// CSV

// WriteCSV writes a header plus rows of cells, comma-separated. Cells
// containing commas, quotes, newlines or carriage returns are quoted
// (RFC 4180).
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	writeLine := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			escaped[i] = escapeCSV(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(escaped, ","))
		return err
	}
	if err := writeLine(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

func escapeCSV(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ---------------------------------------------------------------------------
// Sparklines

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode mini-chart, scaling to [min,max].
// Non-finite values render as spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range values {
		if v != v {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Histogram renders a labelled horizontal bar chart of freq, using at most
// width characters for the longest bar. Labels index into names when
// provided, else are the bin indices.
func Histogram(w io.Writer, freq []float64, names []string, width int) error {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, f := range freq {
		if f > max {
			max = f
		}
	}
	for i, f := range freq {
		label := fmt.Sprintf("%d", i)
		if names != nil && i < len(names) {
			label = names[i]
		}
		bar := 0
		if max > 0 && f > 0 {
			bar = int(f / max * float64(width))
		}
		if _, err := fmt.Fprintf(w, "%12s %7.4f %s\n", label, f, strings.Repeat("#", bar)); err != nil {
			return err
		}
	}
	return nil
}
