//go:build race

package loloha_test

// raceEnabled reports whether the race detector is on; its instrumentation
// allocates, so allocation-count assertions are skipped under -race.
const raceEnabled = true
