// Benchmarks for the client-side report-generation path — the half of the
// pipeline BENCH_ingest.json does not cover. Three row kinds per protocol
// family and domain size:
//
//   - report: the boxed compatibility path — Client.Report(v) materializes
//     a Report value, AppendBinary serializes it into a reused buffer.
//   - append: the fast path — AppendReport writes wire bytes straight into
//     a reused buffer; sparse families skip-sample, zero allocations.
//   - ingest: a full generate→ingest round trip per op through a Stream on
//     the tally-direct path, the end-to-end client+server cost.
//
// Clients cycle through a small working set of values, matching the
// evolving-data setting (users change values rarely), so memoized state is
// warm and the measurement is the steady-state per-report cost. The
// L-OSUE-e4 rows pin the high-ε regime where flips are rarest and
// skip-sampling pays most. BENCH_report.json records the checked-in
// baseline.
//
//	go test -run xxx -bench 'ReportPath' -benchmem .
package loloha_test

import (
	"fmt"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
)

// reportBenchValues is the per-client working-set size: each client reports
// values u, u+1, ... u+reportBenchValues-1 (mod k) round-robin.
const reportBenchValues = 8

func reportBenchProtocols(b *testing.B, k int) []struct {
	name  string
	proto loloha.Protocol
} {
	b.Helper()
	mk := func(p loloha.Protocol, err error) loloha.Protocol {
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	d := 8
	if bkt := k / 4; d > bkt {
		d = bkt
	}
	return []struct {
		name  string
		proto loloha.Protocol
	}{
		{"L-OSUE", mk(loloha.NewLOSUE(k, 2, 1))},
		{"L-OSUE-e4", mk(loloha.NewLOSUE(k, 4, 2))},
		{"RAPPOR", mk(loloha.NewRAPPOR(k, 2, 1))},
		{"L-GRR", mk(loloha.NewLGRR(k, 2, 1))},
		{"BiLOLOHA", mk(loloha.NewBiLOLOHA(k, 2, 1))},
		{"dBitFlipPM", mk(loloha.NewDBitFlipPM(k, k/4, d, 2))},
	}
}

func BenchmarkReportPath(b *testing.B) {
	for _, k := range []int{64, 256, 1024} {
		for _, tc := range reportBenchProtocols(b, k) {
			b.Run(fmt.Sprintf("%s/k=%d/report", tc.name, k), func(b *testing.B) {
				cl := tc.proto.NewClient(1)
				var buf []byte
				// Warm the memoized caches for the working set.
				for v := 0; v < reportBenchValues; v++ {
					buf = cl.Report(v % k).AppendBinary(buf[:0])
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = cl.Report(i % reportBenchValues).AppendBinary(buf[:0])
				}
				benchSink = buf
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
			})
			b.Run(fmt.Sprintf("%s/k=%d/append", tc.name, k), func(b *testing.B) {
				cl := tc.proto.NewClient(1).(loloha.AppendReporter)
				buf := make([]byte, 0, (k+7)/8+16)
				for v := 0; v < reportBenchValues; v++ {
					buf = cl.AppendReport(buf[:0], v%k)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = cl.AppendReport(buf[:0], i%reportBenchValues)
				}
				benchSink = buf
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
			})
		}
	}
}

// BenchmarkReportIngestPath measures the full generate→ingest round trip:
// AppendReport into a reused buffer, wire Ingest on the tally-direct path,
// CloseRound once per cohort sweep. One op is one report end to end.
func BenchmarkReportIngestPath(b *testing.B) {
	const n = 4096
	for _, k := range []int{64, 1024} {
		for _, tc := range reportBenchProtocols(b, k) {
			b.Run(fmt.Sprintf("%s/k=%d/ingest", tc.name, k), func(b *testing.B) {
				stream, err := loloha.NewStream(tc.proto)
				if err != nil {
					b.Fatal(err)
				}
				clients := make([]loloha.AppendReporter, n)
				for u := range clients {
					clients[u] = tc.proto.NewClient(uint64(u) + 1).(loloha.AppendReporter)
					if err := stream.Enroll(u, clients[u].WireRegistration()); err != nil {
						b.Fatal(err)
					}
				}
				buf := make([]byte, 0, (k+7)/8+16)
				// Warm round: memoized client state and server-side
				// first-sight registration work.
				for u, cl := range clients {
					buf = cl.AppendReport(buf[:0], u%k)
					if err := stream.Ingest(u, buf); err != nil {
						b.Fatal(err)
					}
				}
				stream.CloseRound()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					u := i % n
					buf = clients[u].AppendReport(buf[:0], u%k)
					if err := stream.Ingest(u, buf); err != nil {
						b.Fatal(err)
					}
					if u == n-1 {
						benchSink = stream.CloseRound()
					}
				}
				b.StopTimer()
				stream.CloseRound() // flush the partial round
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
			})
		}
	}
}
