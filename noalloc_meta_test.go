package loloha_test

// Meta-test tying the runtime allocation guard to the static one: every
// method pinned by a testing.AllocsPerRun closure somewhere in this repo
// must have at least one //loloha:noalloc-annotated declaration, so the
// AllocsPerRun suites and the lolohalint noalloc analyzer cannot drift
// apart. (The analyzer checks the reverse direction: annotated functions
// must not contain allocating constructs.)

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllocsPerRunTargetsAreAnnotated(t *testing.T) {
	fset := token.NewFileSet()
	pinned := map[string][]string{} // method name -> pin sites
	annotated := map[string]bool{}  // //loloha:noalloc func/method names

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			// lint/ holds the analyzers' own fixtures; testdata is not
			// engine code.
			if path != "." && (name == "lint" || name == "testdata" || strings.HasPrefix(name, ".")) {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, "_test.go") {
			collectPins(fset, f, pinned)
			return nil
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, "//loloha:noalloc") {
					annotated[fd.Name.Name] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned) == 0 {
		t.Fatal("found no testing.AllocsPerRun closures; the meta-test is miswired")
	}
	for name, sites := range pinned {
		if !annotated[name] {
			t.Errorf("%s is pinned by AllocsPerRun at %s but no declaration of %s carries //loloha:noalloc",
				name, strings.Join(sites, ", "), name)
		}
	}
}

// collectPins records every method called (on a non-testing receiver)
// inside the func literal of a testing.AllocsPerRun call.
func collectPins(fset *token.FileSet, f *ast.File, pinned map[string][]string) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "AllocsPerRun" || len(call.Args) != 2 {
			return true
		}
		body, ok := call.Args[1].(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			c, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			s, ok := c.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if recv, ok := s.X.(*ast.Ident); ok && (recv == nil || recv.Name == "t" || recv.Name == "b") {
				return true // testing.T / testing.B helpers
			}
			pos := fset.Position(c.Pos())
			pinned[s.Sel.Name] = append(pinned[s.Sel.Name],
				pos.Filename+":"+itoa(pos.Line))
			return true
		})
		return true
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
