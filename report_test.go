// Tests for the allocation-free report-generation path: every client
// family must implement AppendReporter, emit bytes identical to the boxed
// Report path, and — the headline guarantee mirroring the ingestion side's
// TestIngestSteadyStateZeroAllocs — allocate nothing per report in steady
// state, pinned with testing.AllocsPerRun.
package loloha_test

import (
	"bytes"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// cohortSeed mirrors how WithCohort seeds client u from the stream seed.
func cohortSeed(seed, u uint64) uint64 { return randsrc.Derive(seed, u) }

// reportProtocols builds one protocol per family at a domain size where
// the chained-UE sparse path is active.
func reportProtocols(t testing.TB, k int) map[string]loloha.Protocol {
	t.Helper()
	protos := map[string]loloha.Protocol{}
	add := func(name string, p loloha.Protocol, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		protos[name] = p
	}
	p1, err1 := loloha.NewBiLOLOHA(k, 2, 1)
	add("LOLOHA", p1, err1)
	p2, err2 := loloha.NewLOSUE(k, 2, 1)
	add("chained-UE", p2, err2)
	p3, err3 := loloha.NewLGRR(k, 2, 1)
	add("L-GRR", p3, err3)
	p4, err4 := loloha.NewDBitFlipPM(k, k/4, 6, 2)
	add("dBitFlipPM", p4, err4)
	return protos
}

// TestEveryClientImplementsAppendReporter: the emission fast path is part
// of the family contract, like WireTallier on the ingestion side.
func TestEveryClientImplementsAppendReporter(t *testing.T) {
	for name, proto := range reportProtocols(t, 64) {
		if _, ok := proto.NewClient(1).(loloha.AppendReporter); !ok {
			t.Errorf("%s client does not implement AppendReporter", name)
		}
	}
}

// TestAppendReportMatchesBoxedReport: for every family, same-seed clients
// driven through Report().AppendBinary and AppendReport emit identical
// wire bytes round for round — the interchangeability contract collection
// layers rely on when they pick the fast path.
func TestAppendReportMatchesBoxedReport(t *testing.T) {
	const k, rounds = 96, 12
	for name, proto := range reportProtocols(t, k) {
		t.Run(name, func(t *testing.T) {
			boxedCl := proto.NewClient(17)
			appendCl := proto.NewClient(17).(loloha.AppendReporter)
			var boxed, buf []byte
			for i := 0; i < rounds; i++ {
				v := (i * 13) % k
				boxed = boxedCl.Report(v).AppendBinary(boxed[:0])
				buf = appendCl.AppendReport(buf[:0], v)
				if !bytes.Equal(boxed, buf) {
					t.Fatalf("round %d: Report %x != AppendReport %x", i, boxed, buf)
				}
			}
		})
	}
}

// TestAppendReportSteadyStateZeroAllocs pins the acceptance criterion:
// once a client's memoized caches are warm for its working set and the
// caller's buffer has capacity, AppendReport performs zero allocations per
// report for every family.
func TestAppendReportSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	const k, working, runs = 256, 8, 200
	for name, proto := range reportProtocols(t, k) {
		t.Run(name, func(t *testing.T) {
			cl := proto.NewClient(3).(loloha.AppendReporter)
			buf := make([]byte, 0, (k+7)/8)
			// Warm-up: materialize the memoized state for the working set
			// (first-sight cost, not steady state).
			for v := 0; v < working; v++ {
				buf = cl.AppendReport(buf[:0], v)
			}
			v := 0
			avg := testing.AllocsPerRun(runs, func() {
				buf = cl.AppendReport(buf[:0], v%working)
				v++
			})
			if avg != 0 {
				t.Errorf("steady-state AppendReport allocates %.2f times per report, want 0", avg)
			}
		})
	}
}

// TestStreamCollectUsesWireFastPath: a cohort Stream and hand-driven
// clients over the Report/Add path must agree bit for bit, proving the
// rerouted Collect changed the cost model, not the estimates.
func TestStreamCollectUsesWireFastPath(t *testing.T) {
	const k, n, rounds = 32, 200, 3
	for name, proto := range reportProtocols(t, k) {
		t.Run(name, func(t *testing.T) {
			stream, err := loloha.NewStream(proto, loloha.WithCohort(n, 5), loloha.WithShards(2))
			if err != nil {
				t.Fatal(err)
			}
			// The reference: the same deterministic cohort, tallied through
			// boxed reports.
			clients := make([]loloha.Client, n)
			for u := range clients {
				clients[u] = proto.NewClient(cohortSeed(5, uint64(u)))
			}
			agg := proto.NewAggregator()
			values := make([]int, n)
			for round := 0; round < rounds; round++ {
				for u := range values {
					values[u] = (u + round*7) % k
				}
				res, err := stream.Collect(values)
				if err != nil {
					t.Fatal(err)
				}
				for u, cl := range clients {
					agg.Add(u, cl.Report(values[u]))
				}
				if want := agg.EndRound(); !equalFloats(res.Raw, want) {
					t.Fatalf("round %d: Collect estimates diverged from Report/Add path", round)
				}
			}
		})
	}
}
