package loloha

import (
	"math"
	"testing"
)

func TestFacadeConstructors(t *testing.T) {
	if _, err := New(100, 4, 2, 1); err != nil {
		t.Error(err)
	}
	bi, err := NewBiLOLOHA(100, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bi.G() != 2 {
		t.Errorf("BiLOLOHA g = %d", bi.G())
	}
	ol, err := NewOLOLOHA(100, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ol.G() != OptimalG(5, 3) {
		t.Errorf("OLOLOHA g = %d, want %d", ol.G(), OptimalG(5, 3))
	}
	for name, mk := range map[string]func() (Protocol, error){
		"RAPPOR":     func() (Protocol, error) { return NewRAPPOR(50, 2, 1) },
		"L-OSUE":     func() (Protocol, error) { return NewLOSUE(50, 2, 1) },
		"L-OUE":      func() (Protocol, error) { return NewLOUE(50, 2, 1) },
		"L-SOUE":     func() (Protocol, error) { return NewLSOUE(50, 2, 1) },
		"L-GRR":      func() (Protocol, error) { return NewLGRR(50, 2, 1) },
		"dBitFlipPM": func() (Protocol, error) { return NewDBitFlipPM(50, 10, 3, 2) },
	} {
		if _, err := mk(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for name, mk := range map[string]error{
		"GRR": errOf(func() error { _, e := NewGRR(10, 1); return e }),
		"BLH": errOf(func() error { _, e := NewBLH(10, 1); return e }),
		"OLH": errOf(func() error { _, e := NewOLH(10, 1); return e }),
		"SUE": errOf(func() error { _, e := NewSUE(10, 1); return e }),
		"OUE": errOf(func() error { _, e := NewOUE(10, 1); return e }),
	} {
		if mk != nil {
			t.Errorf("%s: %v", name, mk)
		}
	}
}

func errOf(f func() error) error { return f() }

func TestCohortEndToEnd(t *testing.T) {
	const k, n = 10, 20000
	proto, err := NewBiLOLOHA(k, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cohort, err := NewCohort(proto, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cohort.N() != n {
		t.Fatalf("N = %d", cohort.N())
	}
	values := make([]int, n)
	for u := range values {
		values[u] = u % 4 // only values 0..3 occur
	}
	var est []float64
	for round := 0; round < 3; round++ {
		est, err = cohort.Collect(values)
		if err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < 4; v++ {
		if math.Abs(est[v]-0.25) > 0.05 {
			t.Errorf("est[%d] = %v, want ~0.25", v, est[v])
		}
	}
	for v := 4; v < k; v++ {
		if math.Abs(est[v]) > 0.05 {
			t.Errorf("est[%d] = %v, want ~0", v, est[v])
		}
	}
}

func TestCohortPrivacyAccounting(t *testing.T) {
	proto, _ := NewBiLOLOHA(100, 1.0, 0.5)
	cohort, _ := NewCohort(proto, 50, 3)
	values := make([]int, 50)
	for round := 0; round < 10; round++ {
		for u := range values {
			values[u] = (u + round*7) % 100 // churn
		}
		if _, err := cohort.Collect(values); err != nil {
			t.Fatal(err)
		}
	}
	spent := cohort.PrivacySpent()
	if len(spent) != 50 {
		t.Fatalf("spent length %d", len(spent))
	}
	for u, s := range spent {
		if s <= 0 || s > 2.0+1e-12 {
			t.Errorf("user %d spent %v, want (0, 2]", u, s)
		}
	}
	if m := cohort.MaxPrivacySpent(); m > 2.0+1e-12 {
		t.Errorf("max spent %v exceeds BiLOLOHA bound 2ε∞", m)
	}
}

func TestCohortValidation(t *testing.T) {
	proto, _ := NewBiLOLOHA(10, 1, 0.5)
	if _, err := NewCohort(proto, 0, 1); err == nil {
		t.Error("empty cohort accepted")
	}
	cohort, _ := NewCohort(proto, 3, 1)
	if _, err := cohort.Collect([]int{1, 2}); err == nil {
		t.Error("mismatched values accepted")
	}
}

func TestFacadeAnalysisHelpers(t *testing.T) {
	v, err := ApproxVarianceLOLOHA(2, 1, 2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !(v > 0) {
		t.Errorf("V* = %v", v)
	}
	proto, _ := NewBiLOLOHA(100, 2, 1)
	bound, err := AccuracyBound(100, 10000, 0.05, proto.Params())
	if err != nil {
		t.Fatal(err)
	}
	if !(bound > 0) || math.IsInf(bound, 0) {
		t.Errorf("bound = %v", bound)
	}
}

func TestLOLOHABeatsRAPPORBudgetOnChurn(t *testing.T) {
	// The headline claim, through the public API: identical churny
	// workload, k/g lower privacy spend for LOLOHA.
	const k, n, tau = 64, 30, 200
	lol, _ := NewBiLOLOHA(k, 1.0, 0.5)
	rap, _ := NewRAPPOR(k, 1.0, 0.5)
	cl, _ := NewCohort(lol, n, 1)
	cr, _ := NewCohort(rap, n, 1)
	values := make([]int, n)
	for round := 0; round < tau; round++ {
		for u := range values {
			values[u] = (u*13 + round*17) % k
		}
		if _, err := cl.Collect(values); err != nil {
			t.Fatal(err)
		}
		if _, err := cr.Collect(values); err != nil {
			t.Fatal(err)
		}
	}
	lolMax, rapMax := cl.MaxPrivacySpent(), cr.MaxPrivacySpent()
	if lolMax > 2.0+1e-9 {
		t.Errorf("BiLOLOHA spent %v, cap 2", lolMax)
	}
	if rapMax < 10*lolMax {
		t.Errorf("RAPPOR spent %v, expected ≫ BiLOLOHA's %v", rapMax, lolMax)
	}
}
