// Benchmarks regenerating every table and figure of the paper's evaluation
// at benchmark-friendly scale, plus the ablation and throughput benches
// DESIGN.md calls out. Full paper-scale runs are the job of cmd/lolohasim;
// these benches exercise the identical code paths and report the domain
// metric (mse, eps-spent, detection rate, bytes/report) via b.ReportMetric
// so regressions in either speed or fidelity are visible.
//
//	go test -bench=. -benchmem
package loloha_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
	"github.com/loloha-ldp/loloha/internal/analysis"
	"github.com/loloha-ldp/loloha/internal/attack"
	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/hashfamily"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/randsrc"
	"github.com/loloha-ldp/loloha/internal/simulation"
)

// benchSink prevents dead-code elimination of benchmark results.
var benchSink any

// ---------------------------------------------------------------------------
// Fig. 1: optimal g curves (closed form, full paper grid).

func BenchmarkFig1OptimalG(b *testing.B) {
	alphas := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	grid := analysis.DefaultEpsInfGrid()
	var last []analysis.Fig1Point
	for i := 0; i < b.N; i++ {
		last = analysis.Fig1(grid, alphas)
	}
	benchSink = last
	b.ReportMetric(float64(last[len(last)-1].OptimalG), "max-g")
}

// ---------------------------------------------------------------------------
// Fig. 2: numeric V* comparison (closed form, full paper grid, n = 10000).

func BenchmarkFig2Variance(b *testing.B) {
	alphas := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	grid := analysis.DefaultEpsInfGrid()
	var pts []analysis.Fig2Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = analysis.Fig2(10000, grid, alphas)
		if err != nil {
			b.Fatal(err)
		}
	}
	benchSink = pts
	b.ReportMetric(float64(len(pts)), "points")
}

// ---------------------------------------------------------------------------
// Table 1: communication cost — measured bytes per steady-state report.

func BenchmarkTable1Communication(b *testing.B) {
	const k, epsInf, eps1 = 360, 2.0, 1.0
	protos := map[string]loloha.Protocol{}
	if p, err := loloha.NewOLOLOHA(k, epsInf, eps1); err == nil {
		protos["OLOLOHA"] = p
	}
	if p, err := loloha.NewRAPPOR(k, epsInf, eps1); err == nil {
		protos["RAPPOR"] = p
	}
	if p, err := loloha.NewLGRR(k, epsInf, eps1); err == nil {
		protos["L-GRR"] = p
	}
	if p, err := loloha.NewDBitFlipPM(k, 90, 4, epsInf); err == nil {
		protos["dBitFlipPM"] = p
	}
	for name, proto := range protos {
		proto := proto
		b.Run(name, func(b *testing.B) {
			cl := proto.NewClient(1)
			var buf []byte
			bytesPerReport := 0
			for i := 0; i < b.N; i++ {
				buf = cl.Report(i % k).AppendBinary(buf[:0])
				bytesPerReport = len(buf)
			}
			benchSink = buf
			b.ReportMetric(float64(bytesPerReport), "bytes/report")
			b.ReportMetric(float64(proto.SteadyReportBits()), "bits(theory)")
		})
	}
}

// ---------------------------------------------------------------------------
// Fig. 3: MSE_avg — one scaled-down collection per iteration, per dataset
// family and protocol.

func benchDataset(name string) *datasets.Dataset {
	switch name {
	case "syn":
		return datasets.Syn(datasets.SynConfig{K: 60, N: 2500, Tau: 8, Seed: 1})
	case "adult":
		return datasets.Adult(datasets.AdultConfig{N: 2500, Tau: 8, Seed: 1})
	default: // folk
		d, err := datasets.Folk(datasets.FolkConfig{Name: "folk", K: 300, N: 2500, Tau: 8, Seed: 1})
		if err != nil {
			panic(err)
		}
		return d
	}
}

func BenchmarkFig3MSE(b *testing.B) {
	for _, dsName := range []string{"syn", "adult", "folk"} {
		ds := benchDataset(dsName)
		for _, proto := range []string{"RAPPOR", "L-OSUE", "L-GRR", "BiLOLOHA", "OLOLOHA", "bBitFlipPM"} {
			spec, err := simulation.SpecByName("syn", ds.K, proto)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", dsName, proto), func(b *testing.B) {
				var mse float64
				for i := 0; i < b.N; i++ {
					pts, err := simulation.RunMSE(ds, []simulation.Spec{spec}, simulation.Config{
						EpsInfs: []float64{2.0}, Alphas: []float64{0.5},
						Runs: 1, Seed: uint64(i), Workers: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					mse = pts[0].Mean
				}
				b.ReportMetric(mse, "mse")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Fig. 4: averaged longitudinal privacy loss per protocol.

func BenchmarkFig4PrivacyLoss(b *testing.B) {
	ds := benchDataset("syn")
	for _, proto := range []string{"RAPPOR", "BiLOLOHA", "OLOLOHA", "bBitFlipPM", "1BitFlipPM"} {
		spec, err := simulation.SpecByName("syn", ds.K, proto)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(proto, func(b *testing.B) {
			var eps float64
			for i := 0; i < b.N; i++ {
				pts, err := simulation.RunPrivacyLoss(ds, []simulation.Spec{spec}, simulation.Config{
					EpsInfs: []float64{2.0}, Alphas: []float64{0.5},
					Runs: 1, Seed: uint64(i), Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				eps = pts[0].Mean
			}
			b.ReportMetric(eps, "eps-spent")
		})
	}
}

// ---------------------------------------------------------------------------
// Table 2: dBitFlipPM change detection for d = 1 and d = b.

func BenchmarkTable2Detection(b *testing.B) {
	ds := benchDataset("syn")
	values := make([][]int, ds.Tau())
	for t := range values {
		values[t] = ds.Round(t)
	}
	for _, d := range []int{1, 30} {
		d := d
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			proto, err := longitudinal.NewDBitFlipPM(ds.K, 30, d, 2.0)
			if err != nil {
				b.Fatal(err)
			}
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := attack.DetectDBitFlipChanges(proto, values, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				rate = res.FullyDetectedRate()
			}
			b.ReportMetric(rate, "detect-rate")
		})
	}
}

// ---------------------------------------------------------------------------
// Throughput benches: the per-report client and per-report server costs
// that Table 1 summarizes asymptotically.

func BenchmarkClientReport(b *testing.B) {
	const k = 360
	mk := map[string]func() (loloha.Protocol, error){
		"BiLOLOHA": func() (loloha.Protocol, error) { return loloha.NewBiLOLOHA(k, 2, 1) },
		"OLOLOHA":  func() (loloha.Protocol, error) { return loloha.NewOLOLOHA(k, 2, 1) },
		"RAPPOR":   func() (loloha.Protocol, error) { return loloha.NewRAPPOR(k, 2, 1) },
		"L-OSUE":   func() (loloha.Protocol, error) { return loloha.NewLOSUE(k, 2, 1) },
		"L-GRR":    func() (loloha.Protocol, error) { return loloha.NewLGRR(k, 2, 1) },
		"dBitFlip": func() (loloha.Protocol, error) { return loloha.NewDBitFlipPM(k, 90, 4, 2) },
	}
	for name, f := range mk {
		f := f
		b.Run(name, func(b *testing.B) {
			proto, err := f()
			if err != nil {
				b.Fatal(err)
			}
			cl := proto.NewClient(1)
			var rep loloha.Report
			for i := 0; i < b.N; i++ {
				rep = cl.Report(i % k)
			}
			benchSink = rep
		})
	}
}

func BenchmarkAggregatorAdd(b *testing.B) {
	const k = 360
	for name, f := range map[string]func() (loloha.Protocol, error){
		"BiLOLOHA": func() (loloha.Protocol, error) { return loloha.NewBiLOLOHA(k, 2, 1) },
		"RAPPOR":   func() (loloha.Protocol, error) { return loloha.NewRAPPOR(k, 2, 1) },
		"L-GRR":    func() (loloha.Protocol, error) { return loloha.NewLGRR(k, 2, 1) },
	} {
		f := f
		b.Run(name, func(b *testing.B) {
			proto, err := f()
			if err != nil {
				b.Fatal(err)
			}
			// Pre-generate a pool of reports from a modest user set so Add
			// dominates the measurement.
			const pool = 256
			reports := make([]loloha.Report, pool)
			for u := 0; u < pool; u++ {
				reports[u] = proto.NewClient(uint64(u)).Report(u % k)
			}
			agg := proto.NewAggregator()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg.Add(i%pool, reports[i%pool])
			}
			benchSink = agg
		})
	}
}

// ---------------------------------------------------------------------------
// Sharded collection scaling: the ISSUE 1 tentpole. Collect at 100k and 1M
// users across shard counts — reports/s should scale near-linearly with
// shards up to the core count, and the estimates are bit-identical to
// serial at every setting (asserted by TestShardedCollectMatchesSerial).

func BenchmarkCollectParallel(b *testing.B) {
	const k = 64
	for _, n := range []int{100_000, 1_000_000} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/shards=%d", n, shards), func(b *testing.B) {
				proto, err := loloha.NewBiLOLOHA(k, 2, 1)
				if err != nil {
					b.Fatal(err)
				}
				cohort, err := loloha.NewShardedCohort(proto, n, 42, shards)
				if err != nil {
					b.Fatal(err)
				}
				values := make([]int, n)
				for u := range values {
					values[u] = u % k
				}
				// Warm round: builds the per-user hash-table caches so the
				// timed rounds measure steady-state throughput.
				if _, err := cohort.Collect(values); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					est, err := cohort.Collect(values)
					if err != nil {
						b.Fatal(err)
					}
					benchSink = est
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
			})
		}
	}
}

func BenchmarkIngestParallel(b *testing.B) {
	// Wire-level ingestion under concurrency: a single-stripe service
	// serializes every Ingest on one mutex; the striped service scales
	// with the ingesting goroutines.
	const k, n = 64, 50_000
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // still measures lock contention on small boxes
	}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			proto, err := loloha.NewBiLOLOHA(k, 2, 1)
			if err != nil {
				b.Fatal(err)
			}
			col, err := loloha.NewShardedCollection(proto, shards)
			if err != nil {
				b.Fatal(err)
			}
			payloads := make([][]byte, n)
			for u := 0; u < n; u++ {
				cl := proto.NewClient(uint64(u)).(*core.Client)
				if err := col.Enroll(u, loloha.Registration{HashSeed: cl.HashSeed()}); err != nil {
					b.Fatal(err)
				}
				payloads[u] = cl.ReportValue(u % k).AppendBinary(nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for u := w; u < n; u += workers {
							if err := col.Ingest(u, payloads[u]); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				benchSink = col.CloseRound()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md): support cache, exact IRR calibration, hash
// family choice.

func BenchmarkAblationSupportCache(b *testing.B) {
	const k = 360
	for name, opts := range map[string][]core.Option{
		"cached":   nil,
		"uncached": {core.WithoutSupportCache()},
	} {
		opts := opts
		b.Run(name, func(b *testing.B) {
			proto, err := core.New(k, 4, 2, 1, opts...)
			if err != nil {
				b.Fatal(err)
			}
			const pool = 256
			reports := make([]core.Report, pool)
			for u := 0; u < pool; u++ {
				reports[u] = proto.NewClient(uint64(u)).(*core.Client).ReportValue(u % k)
			}
			agg := proto.NewServer()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg.AddReport(i%pool, reports[i%pool])
			}
			benchSink = agg
		})
	}
}

func BenchmarkAblationIRRCalibration(b *testing.B) {
	// Same (ε∞, ε1, g); the exact calibration should show a lower V* and
	// hence a lower measured MSE on identical workloads.
	ds := benchDataset("syn")
	for name, opts := range map[string][]core.Option{
		"paper": nil,
		"exact": {core.WithExactIRRCalibration()},
	} {
		opts := opts
		b.Run(name, func(b *testing.B) {
			var mse float64
			for i := 0; i < b.N; i++ {
				proto, err := core.New(ds.K, 8, 4.0, 2.0, opts...)
				if err != nil {
					b.Fatal(err)
				}
				spec := simulation.Spec{Name: name, BuildFunc: func(int, float64, float64) (longitudinal.Protocol, error) {
					return proto, nil
				}}
				pts, err := simulation.RunMSE(ds, []simulation.Spec{spec}, simulation.Config{
					EpsInfs: []float64{4.0}, Alphas: []float64{0.5},
					Runs: 1, Seed: uint64(i), Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				mse = pts[0].Mean
			}
			b.ReportMetric(mse, "mse")
		})
	}
}

func BenchmarkAblationPostProcess(b *testing.B) {
	// Replay one BiLOLOHA collection, then score each post-processing
	// method against the truth; MSE is the reported metric.
	ds := benchDataset("syn")
	proto, err := core.NewBinary(ds.K, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	est := simulation.Replay(ds, proto, 1)
	truth := make([][]float64, ds.Tau())
	for t := range truth {
		truth[t] = ds.TrueFrequencies(t)
	}
	for _, m := range []loloha.PostProcess{
		loloha.PostNone, loloha.PostClip, loloha.PostNormalize, loloha.PostSimplex,
	} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			var mse float64
			for i := 0; i < b.N; i++ {
				total := 0.0
				for t := range est {
					round := append([]float64(nil), est[t]...)
					round = loloha.ApplyPostProcess(m, round)
					s := 0.0
					for v := range round {
						d := round[v] - truth[t][v]
						s += d * d
					}
					total += s / float64(ds.K)
				}
				mse = total / float64(ds.Tau())
			}
			b.ReportMetric(mse, "mse")
		})
	}
}

func BenchmarkAblationHashFamily(b *testing.B) {
	const k, g = 1000, 4
	for name, fam := range map[string]hashfamily.Family{
		"splitmix":     hashfamily.NewSplitMixFamily(g),
		"carterwegman": hashfamily.NewCarterWegmanFamily(g),
	} {
		fam := fam
		b.Run(name, func(b *testing.B) {
			proto, err := core.New(k, g, 2, 1, core.WithFamily(fam))
			if err != nil {
				b.Fatal(err)
			}
			r := randsrc.NewSeeded(1)
			cl := proto.NewClient(1)
			for i := 0; i < b.N; i++ {
				benchSink = cl.Report(r.Intn(k))
			}
		})
	}
}
